// Package report renders experiment results as aligned ASCII tables, CSV,
// and a log-log ASCII scatter plot used to regenerate the paper's Fig. 4.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Short rows are padded, long rows truncated to the
// header width.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one labeled sample of a scatter plot.
type Point struct {
	Label string
	X, Y  float64
}

// Scatter is a log-log ASCII scatter plot (the paper's Fig. 4: table size
// per bank in bytes vs. activation overhead in percent).
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
	Width  int
	Height int
}

// NewScatter creates a plot with sensible terminal dimensions.
func NewScatter(title, xlabel, ylabel string) *Scatter {
	return &Scatter{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 20}
}

// Add appends a labeled point. Non-positive coordinates are clamped to a
// small epsilon so stateless techniques (0 bytes) still plot on the log
// axis.
func (s *Scatter) Add(label string, x, y float64) {
	const eps = 0.5
	if x <= 0 {
		x = eps
	}
	if y <= 0 {
		y = eps * 1e-4
	}
	s.Points = append(s.Points, Point{Label: label, X: x, Y: y})
}

// Render writes the plot: a grid with one marker letter per point and a
// legend mapping letters to labels and coordinates.
func (s *Scatter) Render(w io.Writer) error {
	if len(s.Points) == 0 {
		_, err := fmt.Fprintln(w, s.Title+": no data")
		return err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	// Pad the log range so extremes sit inside the frame.
	lx0, lx1 := math.Log10(minX)-0.2, math.Log10(maxX)+0.2
	ly0, ly1 := math.Log10(minY)-0.2, math.Log10(maxY)+0.2
	if lx1 <= lx0 {
		lx1 = lx0 + 1
	}
	if ly1 <= ly0 {
		ly1 = ly0 + 1
	}
	grid := make([][]byte, s.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", s.Width))
	}
	marker := byte('A')
	var legend []string
	for _, p := range s.Points {
		cx := int((math.Log10(p.X) - lx0) / (lx1 - lx0) * float64(s.Width-1))
		cy := int((math.Log10(p.Y) - ly0) / (ly1 - ly0) * float64(s.Height-1))
		row := s.Height - 1 - cy
		if grid[row][cx] != ' ' {
			// Collision: nudge right.
			for cx < s.Width-1 && grid[row][cx] != ' ' {
				cx++
			}
		}
		grid[row][cx] = marker
		legend = append(legend, fmt.Sprintf("  %c = %-10s (%.4g B, %.4g %%)", marker, p.Label, p.X, p.Y))
		marker++
	}
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title + "\n")
	}
	b.WriteString(fmt.Sprintf("%s (log scale) vs %s (log scale)\n", s.YLabel, s.XLabel))
	b.WriteString("+" + strings.Repeat("-", s.Width) + "+\n")
	for _, row := range grid {
		b.WriteString("|" + string(row) + "|\n")
	}
	b.WriteString("+" + strings.Repeat("-", s.Width) + "+\n")
	b.WriteString(fmt.Sprintf(" x: %.3g .. %.3g %s\n", minX, maxX, s.XLabel))
	b.WriteString(fmt.Sprintf(" y: %.3g .. %.3g %s\n", minY, maxY, s.YLabel))
	for _, l := range legend {
		b.WriteString(l + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the points as CSV for external plotting.
func (s *Scatter) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,x,y"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%s,%g,%g\n", p.Label, p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a percentage with the paper's precision.
func Pct(v float64) string { return fmt.Sprintf("%.4f%%", v) }

// PctErr formats mean ± stddev percentages, Table III style.
func PctErr(mean, std float64) string {
	return fmt.Sprintf("(%.4f ± %.4f)%%", mean, std)
}

// Bytes formats a byte count.
func Bytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// YesNo renders a boolean like the paper's vulnerability column.
func YesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

// Package iofault is the injectable filesystem seam behind the
// persistence layer. Production code writes checkpoints through the FS
// interface; tests and the chaos torture harness (internal/chaostest)
// substitute a fault-injecting implementation that realizes the failure
// modes a real machine exhibits around a crash — torn writes, short
// writes, write errors (EIO/ENOSPC), rename failures, and fsync loss —
// all seed-deterministically, so every torture run is reproducible from
// its seed.
//
// The seam is deliberately small: the operations an atomic
// write-temp-then-rename checkpoint needs (ReadFile, CreateTemp,
// Rename, Remove), an append handle for the serving tier's write-ahead
// job journal (OpenAppend), a directory listing for quarantine-corpse
// pruning (ReadDir), plus the File handle operations (Write, Sync,
// Close, Name). Passthrough (OS) adds nothing on top of the os package.
package iofault

import (
	"io"
	"os"
)

// File is the writable handle CreateTemp returns. The production
// implementation is a thin wrapper over *os.File; the chaos
// implementation buffers writes so it can tear, drop, or corrupt them
// at Close time.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (the durability point the
	// chaos implementation's fsync-loss fault attacks).
	Sync() error
	// Close finalizes the file. After a successful Close the bytes are
	// expected on disk — unless a fault decided otherwise.
	Close() error
	// Name returns the file's path.
	Name() string
}

// FS is the filesystem seam. Implementations must be safe for
// concurrent use (the checkpoint serializes its own flushes, but
// multiple checkpoints may share one FS).
type FS interface {
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens path for appending, creating it if absent. This
	// is the write-ahead journal's durability path: each record is
	// Written and then Synced through the returned handle, so the chaos
	// implementation can tear, drop, or kill at exactly those
	// per-record commit points.
	OpenAppend(path string) (File, error)
	// ReadDir lists the entry names in dir (quarantine pruning scans a
	// checkpoint's directory for *.corrupt-<ts> siblings through the
	// seam so tests can fault or observe the deletions).
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates a directory (and parents) — the sharded checkpoint
	// lays its shard files out in a directory per checkpoint.
	MkdirAll(path string) error
}

// OS is the passthrough implementation: every call maps 1:1 onto the
// os package.
type OS struct{}

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenAppend implements FS.
func (OS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

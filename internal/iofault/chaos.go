package iofault

import (
	"errors"
	"fmt"
	"sync"

	"tivapromi/internal/obs"
	"tivapromi/internal/rng"
)

// Injected fault errors. They are distinct sentinel values so tests can
// tell an injected failure from a real one with errors.Is.
var (
	// ErrInjectedIO is the chaos stand-in for EIO.
	ErrInjectedIO = errors.New("iofault: injected I/O error")
	// ErrInjectedNoSpace is the chaos stand-in for ENOSPC.
	ErrInjectedNoSpace = errors.New("iofault: injected no space left on device")
	// ErrPoweredOff is returned by every mutating operation after
	// PowerOff: the moment the simulated machine died. Unsynced append
	// tails vanish with it.
	ErrPoweredOff = errors.New("iofault: powered off")
)

// ChaosConfig sets the per-operation fault probabilities of a Chaos FS.
// All probabilities are in [0, 1] and are evaluated independently per
// operation from the seeded stream; the zero value injects nothing.
type ChaosConfig struct {
	// Seed drives every fault decision. Two Chaos FSes with the same
	// seed and the same operation sequence make identical decisions.
	Seed uint64

	// TornWrite silently persists only a prefix of a Write while
	// reporting full success — the classic crash-mid-write outcome.
	TornWrite float64
	// ShortWrite persists a prefix and reports it (n < len(p) with
	// io.ErrShortWrite), the well-behaved sibling of TornWrite.
	ShortWrite float64
	// WriteErr fails a Write outright with ErrInjectedIO.
	WriteErr float64
	// NoSpace fails a Write with ErrInjectedNoSpace.
	NoSpace float64
	// RenameFail fails a Rename with ErrInjectedIO, leaving the target
	// untouched (the temp file survives, the swap never happens).
	RenameFail float64
	// FsyncLoss makes Sync lie: it reports success without making the
	// unsynced tail durable, and the tail is dropped when the file is
	// closed — modeling a kill after fsync was acknowledged by a
	// caching layer but before writeback.
	FsyncLoss float64
	// BitFlip flips one random byte of the persisted content at Close —
	// silent media corruption.
	BitFlip float64
}

// ChaosStats counts the faults a Chaos FS injected.
type ChaosStats struct {
	TornWrites  int
	ShortWrites int
	WriteErrs   int
	NoSpaceErrs int
	RenameFails int
	FsyncLosses int
	BitFlips    int
	// Commits counts successful Renames — the durability boundaries a
	// crash-consistency test kills at.
	Commits int
	// AppendCommits counts honest Syncs on append handles — the
	// journal-entry durability boundaries the serve torture harness
	// kills at.
	AppendCommits int
}

// Total returns the number of injected faults (Commits excluded).
func (s ChaosStats) Total() int {
	return s.TornWrites + s.ShortWrites + s.WriteErrs + s.NoSpaceErrs +
		s.RenameFails + s.FsyncLosses + s.BitFlips
}

// Chaos is the fault-injecting FS. It wraps an inner FS (OS{} in
// practice), buffers file writes so faults can be applied to the final
// content, and draws every decision from one seeded deterministic
// stream. Safe for concurrent use; with a concurrent caller the fault
// decisions remain drawn from the same stream, but which operation gets
// which draw depends on scheduling (per-run reproducibility requires a
// serial caller, which is how the torture harness uses it).
type Chaos struct {
	mu    sync.Mutex
	inner FS
	cfg   ChaosConfig
	src   *rng.XorShift64Star
	stats ChaosStats

	// OnCommit, when non-nil, runs after every successful Rename with
	// the destination path and the 1-based commit ordinal. The torture
	// harness uses it to kill a campaign at a randomized flush
	// boundary. Called without the Chaos lock held.
	OnCommit func(path string, commit int)

	// OnAppend, when non-nil, runs after every honest Sync on an append
	// handle with the file's path and the 1-based append-commit
	// ordinal. The serve torture harness uses it to power the machine
	// off at a randomized journal-commit boundary. Called without the
	// Chaos lock held.
	OnAppend func(path string, commit int)

	// off, once set by PowerOff, fails every mutating operation: the
	// simulated machine is dead and nothing it attempts reaches disk.
	off bool
}

// PowerOff kills the simulated machine: every subsequent Write, Sync,
// Close, CreateTemp, OpenAppend, Rename, and Remove fails with
// ErrPoweredOff, and append tails that were never honestly synced are
// lost. A server sharing this FS can no longer journal its own death —
// exactly the asymmetry a crash-recovery test needs.
func (c *Chaos) PowerOff() {
	c.mu.Lock()
	c.off = true
	c.mu.Unlock()
}

// NewChaos wraps inner (nil means OS{}) with fault injection.
func NewChaos(inner FS, cfg ChaosConfig) *Chaos {
	if inner == nil {
		inner = OS{}
	}
	return &Chaos{inner: inner, cfg: cfg, src: rng.NewXorShift64Star(cfg.Seed ^ 0xc4a05)}
}

// Stats returns a snapshot of the injected-fault counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// roll draws one Bernoulli decision with probability p from the seeded
// stream. Requires c.mu held.
func (c *Chaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return rng.Float64(c.src) < p
}

// intn draws a bounded integer from the seeded stream. Requires c.mu
// held.
func (c *Chaos) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return rng.Intn(c.src, n)
}

// ReadFile implements FS (reads are passed through unfaulted: the
// checkpoint's read path is attacked via the bytes a faulted write left
// behind, which is the realistic channel).
func (c *Chaos) ReadFile(path string) ([]byte, error) { return c.inner.ReadFile(path) }

// poweredOff reports whether PowerOff has fired.
func (c *Chaos) poweredOff() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.off
}

// CreateTemp implements FS.
func (c *Chaos) CreateTemp(dir, pattern string) (File, error) {
	if c.poweredOff() {
		return nil, ErrPoweredOff
	}
	f, err := c.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, inner: f}, nil
}

// OpenAppend implements FS. Unlike CreateTemp's buffered handle, the
// append handle keeps only the not-yet-synced tail in memory: an honest
// Sync pushes it to the real file (and fires OnAppend), an fsync-loss
// fault acknowledges without pushing, and PowerOff vaporizes whatever
// was still pending — the crash semantics of a real write-ahead log.
func (c *Chaos) OpenAppend(path string) (File, error) {
	if c.poweredOff() {
		return nil, ErrPoweredOff
	}
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &chaosAppendFile{fs: c, inner: f}, nil
}

// ReadDir implements FS (passed through unfaulted, like ReadFile).
func (c *Chaos) ReadDir(dir string) ([]string, error) { return c.inner.ReadDir(dir) }

// Rename implements FS.
func (c *Chaos) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return ErrPoweredOff
	}
	fail := c.roll(c.cfg.RenameFail)
	if fail {
		c.stats.RenameFails++
		obs.ChaosInjection("rename_fail")
	}
	c.mu.Unlock()
	if fail {
		return fmt.Errorf("iofault: rename %s: %w", newpath, ErrInjectedIO)
	}
	if err := c.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.Commits++
	n := c.stats.Commits
	hook := c.OnCommit
	c.mu.Unlock()
	if hook != nil {
		hook(newpath, n)
	}
	return nil
}

// Remove implements FS.
func (c *Chaos) Remove(path string) error {
	if c.poweredOff() {
		return ErrPoweredOff
	}
	return c.inner.Remove(path)
}

// MkdirAll implements FS (passed through unfaulted: directory creation
// happens once per checkpoint, before any durability boundary worth
// attacking — the interesting faults live in the write/rename path).
func (c *Chaos) MkdirAll(path string) error { return c.inner.MkdirAll(path) }

// chaosFile buffers all writes in memory, applying write-time faults,
// and materializes the (possibly torn, truncated, or corrupted) final
// content into the real temp file at Close.
type chaosFile struct {
	fs    *Chaos
	inner File
	buf   []byte
	// durable is the watermark of the last honest Sync; an fsync-loss
	// fault truncates the persisted content to it at Close.
	durable  int
	lostSync bool
	closed   bool
}

// shortWriteErr mirrors io.ErrShortWrite without importing io here.
var shortWriteErr = errors.New("short write")

// Write implements io.Writer with injected write faults.
func (f *chaosFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return 0, ErrPoweredOff
	}
	switch {
	case c.roll(c.cfg.WriteErr):
		c.stats.WriteErrs++
		obs.ChaosInjection("write_err")
		c.mu.Unlock()
		return 0, fmt.Errorf("iofault: write %s: %w", f.inner.Name(), ErrInjectedIO)
	case c.roll(c.cfg.NoSpace):
		c.stats.NoSpaceErrs++
		obs.ChaosInjection("no_space")
		c.mu.Unlock()
		return 0, fmt.Errorf("iofault: write %s: %w", f.inner.Name(), ErrInjectedNoSpace)
	case c.roll(c.cfg.TornWrite):
		// Persist a strict prefix but report complete success: the
		// caller proceeds to rename a torn file into place.
		c.stats.TornWrites++
		obs.ChaosInjection("torn_write")
		keep := c.intn(len(p))
		c.mu.Unlock()
		f.buf = append(f.buf, p[:keep]...)
		return len(p), nil
	case c.roll(c.cfg.ShortWrite):
		c.stats.ShortWrites++
		obs.ChaosInjection("short_write")
		keep := c.intn(len(p))
		c.mu.Unlock()
		f.buf = append(f.buf, p[:keep]...)
		return keep, shortWriteErr
	}
	c.mu.Unlock()
	f.buf = append(f.buf, p...)
	return len(p), nil
}

// Sync implements File; an fsync-loss fault acknowledges the sync
// without advancing the durability watermark.
func (f *chaosFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return ErrPoweredOff
	}
	lost := c.roll(c.cfg.FsyncLoss)
	if lost {
		c.stats.FsyncLosses++
		obs.ChaosInjection("fsync_loss")
	}
	c.mu.Unlock()
	if lost {
		f.lostSync = true
		return nil
	}
	f.durable = len(f.buf)
	return nil
}

// Close materializes the final (post-fault) content into the real file.
func (f *chaosFile) Close() error {
	if f.closed {
		return errors.New("iofault: file already closed")
	}
	f.closed = true
	out := f.buf
	if f.lostSync {
		// The acknowledged-but-lost tail vanishes with the crash.
		out = out[:f.durable]
	}
	c := f.fs
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		f.inner.Close()
		return ErrPoweredOff
	}
	if len(out) > 0 && c.roll(c.cfg.BitFlip) {
		c.stats.BitFlips++
		obs.ChaosInjection("bit_flip")
		pos := c.intn(len(out))
		flip := byte(1) << uint(c.intn(8))
		c.mu.Unlock()
		out = append([]byte(nil), out...)
		out[pos] ^= flip
	} else {
		c.mu.Unlock()
	}
	if _, err := f.inner.Write(out); err != nil {
		f.inner.Close()
		return err
	}
	if err := f.inner.Sync(); err != nil {
		f.inner.Close()
		return err
	}
	return f.inner.Close()
}

// Name implements File.
func (f *chaosFile) Name() string { return f.inner.Name() }

// chaosAppendFile is the fault-injecting append handle. Writes land in
// a pending buffer (after write-time faults); an honest Sync flushes
// pending bytes to the real file, syncs it, and fires OnAppend; an
// fsync-loss fault acknowledges the Sync while leaving the bytes
// pending, so they survive only if a later honest Sync (or a clean
// Close) happens before PowerOff.
type chaosAppendFile struct {
	fs      *Chaos
	inner   File
	mu      sync.Mutex
	pending []byte
	closed  bool
}

// Write implements io.Writer with injected write faults on the pending
// tail.
func (f *chaosAppendFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return 0, ErrPoweredOff
	}
	switch {
	case c.roll(c.cfg.WriteErr):
		c.stats.WriteErrs++
		obs.ChaosInjection("write_err")
		c.mu.Unlock()
		return 0, fmt.Errorf("iofault: append %s: %w", f.inner.Name(), ErrInjectedIO)
	case c.roll(c.cfg.NoSpace):
		c.stats.NoSpaceErrs++
		obs.ChaosInjection("no_space")
		c.mu.Unlock()
		return 0, fmt.Errorf("iofault: append %s: %w", f.inner.Name(), ErrInjectedNoSpace)
	case c.roll(c.cfg.TornWrite):
		c.stats.TornWrites++
		obs.ChaosInjection("torn_write")
		keep := c.intn(len(p))
		c.mu.Unlock()
		f.mu.Lock()
		f.pending = append(f.pending, p[:keep]...)
		f.mu.Unlock()
		return len(p), nil
	case c.roll(c.cfg.ShortWrite):
		c.stats.ShortWrites++
		obs.ChaosInjection("short_write")
		keep := c.intn(len(p))
		c.mu.Unlock()
		f.mu.Lock()
		f.pending = append(f.pending, p[:keep]...)
		f.mu.Unlock()
		return keep, shortWriteErr
	case len(p) > 0 && c.roll(c.cfg.BitFlip):
		// Append logs have no Close-time materialization, so silent
		// media corruption strikes at write time instead.
		c.stats.BitFlips++
		obs.ChaosInjection("bit_flip")
		pos := c.intn(len(p))
		flip := byte(1) << uint(c.intn(8))
		c.mu.Unlock()
		mut := append([]byte(nil), p...)
		mut[pos] ^= flip
		f.mu.Lock()
		f.pending = append(f.pending, mut...)
		f.mu.Unlock()
		return len(p), nil
	}
	c.mu.Unlock()
	f.mu.Lock()
	f.pending = append(f.pending, p...)
	f.mu.Unlock()
	return len(p), nil
}

// Sync implements File. An honest sync is the journal's commit point.
func (f *chaosAppendFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	if c.off {
		c.mu.Unlock()
		return ErrPoweredOff
	}
	if c.roll(c.cfg.FsyncLoss) {
		c.stats.FsyncLosses++
		obs.ChaosInjection("fsync_loss")
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	if err := f.flush(); err != nil {
		return err
	}
	if err := f.inner.Sync(); err != nil {
		return err
	}
	c.mu.Lock()
	c.stats.AppendCommits++
	n := c.stats.AppendCommits
	hook := c.OnAppend
	c.mu.Unlock()
	if hook != nil {
		hook(f.inner.Name(), n)
	}
	return nil
}

// flush pushes the pending tail into the real file.
func (f *chaosAppendFile) flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.pending) == 0 {
		return nil
	}
	if _, err := f.inner.Write(f.pending); err != nil {
		return err
	}
	f.pending = nil
	return nil
}

// Close implements File. A clean close lands the pending tail (the
// page cache drains when the process exits normally); after PowerOff
// the tail is gone.
func (f *chaosAppendFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return errors.New("iofault: file already closed")
	}
	f.closed = true
	f.mu.Unlock()
	if f.fs.poweredOff() {
		f.inner.Close()
		return ErrPoweredOff
	}
	if err := f.flush(); err != nil {
		f.inner.Close()
		return err
	}
	return f.inner.Close()
}

// Name implements File.
func (f *chaosAppendFile) Name() string { return f.inner.Name() }

package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeOnce pushes one payload through fs's temp-write-then-rename
// protocol and returns what landed at dst.
func writeOnce(t *testing.T, fs FS, dir, dst string, payload []byte, sync bool) ([]byte, error) {
	t.Helper()
	f, err := fs.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return nil, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := fs.Rename(f.Name(), dst); err != nil {
		return nil, err
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	return got, nil
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out")
	got, err := writeOnce(t, OS{}, dir, dst, []byte("hello"), true)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("passthrough wrote %q", got)
	}
}

func TestChaosZeroConfigInjectsNothing(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 1})
	got, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), []byte("payload"), true)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("zero-config chaos altered bytes: %q", got)
	}
	st := c.Stats()
	if st.Total() != 0 || st.Commits != 1 {
		t.Fatalf("stats = %+v, want clean with 1 commit", st)
	}
}

func TestChaosDeterministicInSeed(t *testing.T) {
	run := func(seed uint64) (ChaosStats, []string) {
		dir := t.TempDir()
		c := NewChaos(nil, ChaosConfig{
			Seed: seed, TornWrite: 0.2, ShortWrite: 0.2, WriteErr: 0.1,
			NoSpace: 0.1, RenameFail: 0.2, FsyncLoss: 0.1, BitFlip: 0.1,
		})
		var outcomes []string
		for i := 0; i < 40; i++ {
			dst := filepath.Join(dir, "out")
			got, err := writeOnce(t, c, dir, dst, []byte("0123456789abcdef"), true)
			// Error strings embed randomized temp paths, so classify
			// by type rather than comparing raw messages.
			switch {
			case errors.Is(err, ErrInjectedNoSpace):
				outcomes = append(outcomes, "nospace")
			case errors.Is(err, ErrInjectedIO):
				outcomes = append(outcomes, "io")
			case err != nil:
				outcomes = append(outcomes, "err")
			default:
				outcomes = append(outcomes, "ok:"+string(got))
			}
			os.Remove(dst)
		}
		return c.Stats(), outcomes
	}
	s1, o1 := run(99)
	s2, o2 := run(99)
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(o1, o2) {
		t.Fatalf("same seed diverged:\n%+v vs %+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Fatal("aggressive fault config injected nothing in 40 writes")
	}
	s3, o3 := run(100)
	if reflect.DeepEqual(s1, s3) && reflect.DeepEqual(o1, o3) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestChaosTornWriteReportsSuccessPersistsPrefix(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 3, TornWrite: 1})
	payload := []byte("full-payload-bytes")
	got, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), payload, true)
	if err != nil {
		t.Fatalf("a torn write must report success, got %v", err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("torn write persisted %d bytes of %d", len(got), len(payload))
	}
	if string(got) != string(payload[:len(got)]) {
		t.Fatalf("torn write persisted non-prefix %q", got)
	}
	if c.Stats().TornWrites == 0 {
		t.Fatal("torn write not counted")
	}
}

func TestChaosFsyncLossDropsUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 5, FsyncLoss: 1})
	// Sync is acknowledged but lies; the whole buffer is the unsynced
	// tail, so the persisted file is empty.
	got, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), []byte("doomed"), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("acknowledged-but-lost fsync persisted %q", got)
	}
	if c.Stats().FsyncLosses == 0 {
		t.Fatal("fsync loss not counted")
	}
}

func TestChaosWriteErrorsAreTyped(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 7, WriteErr: 1})
	_, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), []byte("x"), false)
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("err = %v, want ErrInjectedIO", err)
	}
	c2 := NewChaos(nil, ChaosConfig{Seed: 7, NoSpace: 1})
	_, err = writeOnce(t, c2, dir, filepath.Join(dir, "out2"), []byte("x"), false)
	if !errors.Is(err, ErrInjectedNoSpace) {
		t.Fatalf("err = %v, want ErrInjectedNoSpace", err)
	}
}

func TestChaosRenameFailLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out")
	if err := os.WriteFile(dst, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewChaos(nil, ChaosConfig{Seed: 11, RenameFail: 1})
	_, err := writeOnce(t, c, dir, dst, []byte("next"), true)
	if !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("err = %v, want injected rename failure", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "previous" {
		t.Fatalf("failed rename disturbed the target: %q, %v", got, err)
	}
}

func TestChaosBitFlipCorruptsExactlyOneBit(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 13, BitFlip: 1})
	payload := []byte("0123456789abcdef")
	got, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), payload, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("bit flip changed length: %d vs %d", len(got), len(payload))
	}
	diffBits := 0
	for i := range got {
		x := got[i] ^ payload[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("bit flip changed %d bits, want exactly 1", diffBits)
	}
}

func TestChaosOnCommitOrdinalsAndKillHook(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 17})
	var commits []int
	c.OnCommit = func(path string, n int) { commits = append(commits, n) }
	for i := 0; i < 3; i++ {
		if _, err := writeOnce(t, c, dir, filepath.Join(dir, "out"), []byte("x"), true); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(commits, []int{1, 2, 3}) {
		t.Fatalf("commit ordinals = %v", commits)
	}
	if c.Stats().Commits != 3 {
		t.Fatalf("commit count = %d", c.Stats().Commits)
	}
}

func TestChaosDoubleCloseRejected(t *testing.T) {
	dir := t.TempDir()
	c := NewChaos(nil, ChaosConfig{Seed: 19})
	f, err := c.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

package cpu

import (
	"testing"

	"tivapromi/internal/cache"
)

func collectSystem(t *testing.T, programs []Program) (*System, *[]cache.MemOp) {
	t.Helper()
	var ops []cache.MemOp
	s, err := NewSystem(programs, DefaultL1(), DefaultL2(), func(m cache.MemOp) {
		ops = append(ops, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, &ops
}

func TestStreamProgramSweeps(t *testing.T) {
	p := NewStreamProgram(0x1000, 1<<20, 64, 1)
	first := p.Next()
	second := p.Next()
	if second.Addr != first.Addr+64 {
		t.Fatalf("stride broken: %x -> %x", first.Addr, second.Addr)
	}
	// Wraps at region end.
	steps := (1 << 20) / 64
	for i := 0; i < steps; i++ {
		p.Next()
	}
	if got := p.Next().Addr; got < 0x1000 || got >= 0x1000+(1<<20) {
		t.Fatalf("left the region: %x", got)
	}
}

func TestChaseProgramStaysInRegion(t *testing.T) {
	p := NewChaseProgram(0x10000, 1<<16, 2)
	for i := 0; i < 10000; i++ {
		op := p.Next()
		if op.Addr < 0x10000 || op.Addr >= 0x10000+(1<<16) {
			t.Fatalf("escaped region: %x", op.Addr)
		}
		if op.Flush {
			t.Fatal("chase program flushed")
		}
	}
}

func TestHammerAlternatesFlushLoad(t *testing.T) {
	p := NewHammerProgram([]uint64{0xa000, 0xb000})
	seq := []Op{p.Next(), p.Next(), p.Next(), p.Next()}
	if !seq[0].Flush || seq[1].Flush || !seq[2].Flush || seq[3].Flush {
		t.Fatalf("flush pattern broken: %+v", seq)
	}
	if seq[0].Addr != 0xa000 || seq[1].Addr != 0xa000 || seq[2].Addr != 0xb000 {
		t.Fatalf("address rotation broken: %+v", seq)
	}
}

func TestHammerPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hammer accepted")
		}
	}()
	NewHammerProgram(nil)
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, DefaultL1(), DefaultL2(), func(cache.MemOp) {}); err == nil {
		t.Fatal("no programs accepted")
	}
	if _, err := NewSystem([]Program{NewStreamProgram(0, 1<<20, 64, 1)}, DefaultL1(), DefaultL2(), nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestCacheFiltersWorkloadTraffic(t *testing.T) {
	// A small streaming working set should be mostly absorbed by the
	// caches: DRAM traffic far below instruction traffic.
	s, ops := collectSystem(t, []Program{NewStreamProgram(0, 32<<10, 8, 1)})
	s.Run(100_000)
	if s.Ops() != 100_000 {
		t.Fatalf("ops = %d", s.Ops())
	}
	ratio := float64(len(*ops)) / 100_000
	if ratio > 0.05 {
		t.Fatalf("DRAM traffic ratio %.3f, want <0.05 for a cached stream", ratio)
	}
}

func TestHammerTrafficBypassesCache(t *testing.T) {
	// The attacker's flush+load pattern must reach DRAM on (almost) every
	// load: one memory op per two instruction ops.
	s, ops := collectSystem(t, []Program{NewHammerProgram([]uint64{0x100000, 0x200000})})
	s.Run(10_000)
	// 5000 loads; each should miss.
	if got := len(*ops); got < 4900 {
		t.Fatalf("hammer produced %d DRAM ops from 5000 loads", got)
	}
}

func TestMixedSystemInterleavesCores(t *testing.T) {
	s, ops := collectSystem(t, []Program{
		NewStreamProgram(0, 1<<20, 64, 1),
		NewChaseProgram(1<<21, 1<<20, 2),
		NewHammerProgram([]uint64{1 << 22, 1<<22 + 1<<14}),
		NewStreamProgram(1<<23, 1<<20, 64, 3),
	})
	s.Run(40_000)
	if len(*ops) == 0 {
		t.Fatal("no DRAM traffic")
	}
	if s.MemOps() != uint64(len(*ops)) {
		t.Fatalf("MemOps = %d, sank %d", s.MemOps(), len(*ops))
	}
	// Hammer core (every 4th op) dominates DRAM traffic: 5000 loads
	// mostly missing vs cached workloads.
	if float64(len(*ops)) < 4000 {
		t.Fatalf("DRAM ops = %d, expected attacker-dominated traffic", len(*ops))
	}
}

func TestWriteBacksCarryWriteFlag(t *testing.T) {
	// Dirty lines evicted from a tiny working set must surface as write
	// DRAM ops eventually.
	s, ops := collectSystem(t, []Program{NewChaseProgram(0, 8<<20, 7)})
	s.Run(400_000)
	writes := 0
	for _, op := range *ops {
		if op.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("no write-backs from a write-heavy chase over 8 MB")
	}
}

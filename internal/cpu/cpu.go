// Package cpu is the trace front-end: simple cores executing synthetic
// programs through the cache hierarchy of internal/cache, producing the
// DRAM access stream a gem5 run would produce (the paper's Table I
// front-end: 4 cores, 64 KB L1, 256 KB L2).
//
// The front-end exists to derive and validate the post-cache traffic
// statistics that the faster generators in internal/workload mimic at
// scale; cmd/tracegen exposes it directly.
package cpu

import (
	"fmt"

	"tivapromi/internal/cache"
	"tivapromi/internal/rng"
)

// Op is one instruction-level memory operation.
type Op struct {
	Addr  uint64
	Write bool
	// Flush issues a CLFLUSH of Addr instead of a load/store — the
	// attacker's tool.
	Flush bool
}

// Program produces a core's memory-operation stream.
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Next returns the next operation.
	Next() Op
}

// StreamProgram sweeps a region sequentially with a fixed stride,
// libquantum-style.
type StreamProgram struct {
	base, size, stride uint64
	pos                uint64
	src                *rng.XorShift64Star
}

// NewStreamProgram returns a streaming program over [base, base+size).
func NewStreamProgram(base, size, stride uint64, seed uint64) *StreamProgram {
	if stride == 0 {
		stride = 8
	}
	return &StreamProgram{base: base, size: size, stride: stride,
		src: rng.NewXorShift64Star(seed)}
}

// Name implements Program.
func (p *StreamProgram) Name() string { return "stream" }

// Next implements Program.
func (p *StreamProgram) Next() Op {
	addr := p.base + p.pos
	p.pos += p.stride
	if p.pos >= p.size {
		p.pos = 0
	}
	return Op{Addr: addr, Write: p.src.Uint64()&3 == 0}
}

// ChaseProgram walks pseudo-random locations in a region, mcf-style: the
// next address depends on the current one, defeating prefetch-like
// locality while revisiting a bounded working set.
type ChaseProgram struct {
	base, size uint64
	cur        uint64
	src        *rng.XorShift64Star
}

// NewChaseProgram returns a pointer-chasing program over [base, base+size).
func NewChaseProgram(base, size uint64, seed uint64) *ChaseProgram {
	return &ChaseProgram{base: base, size: size, src: rng.NewXorShift64Star(seed)}
}

// Name implements Program.
func (p *ChaseProgram) Name() string { return "chase" }

// Next implements Program.
func (p *ChaseProgram) Next() Op {
	// Hash-walk: deterministic function of the previous position.
	p.cur = (p.cur*6364136223846793005 + 1442695040888963407) ^ p.src.Uint64()>>48
	addr := p.base + (p.cur % p.size)
	return Op{Addr: addr &^ 7, Write: p.src.Uint64()&7 == 0}
}

// HammerProgram is the attacker: it alternates CLFLUSH and loads over a
// set of aggressor addresses, the Kim et al. cache-flush attack loop.
type HammerProgram struct {
	addrs []uint64
	pos   int
	flush bool
}

// NewHammerProgram returns an attacker hammering the given addresses. It
// panics on an empty target list; an attack needs targets.
func NewHammerProgram(addrs []uint64) *HammerProgram {
	if len(addrs) == 0 {
		panic("cpu: hammer program needs at least one address")
	}
	return &HammerProgram{addrs: append([]uint64(nil), addrs...), flush: true}
}

// Name implements Program.
func (p *HammerProgram) Name() string { return "hammer" }

// Next implements Program: flush then load, per aggressor, round-robin.
func (p *HammerProgram) Next() Op {
	addr := p.addrs[p.pos]
	if p.flush {
		p.flush = false
		return Op{Addr: addr, Flush: true}
	}
	p.flush = true
	p.pos++
	if p.pos == len(p.addrs) {
		p.pos = 0
	}
	return Op{Addr: addr}
}

// System runs one program per core through a shared cache hierarchy and
// hands the resulting DRAM operations to a sink.
type System struct {
	programs []Program
	hier     *cache.Hierarchy
	sink     func(cache.MemOp)
	buf      []cache.MemOp
	ops      uint64
	memOps   uint64
}

// NewSystem builds the front-end. sink receives every DRAM-level
// operation in program order.
func NewSystem(programs []Program, l1, l2 cache.Config, sink func(cache.MemOp)) (*System, error) {
	if len(programs) == 0 {
		return nil, fmt.Errorf("cpu: no programs")
	}
	if sink == nil {
		return nil, fmt.Errorf("cpu: nil sink")
	}
	h, err := cache.NewHierarchy(len(programs), l1, l2)
	if err != nil {
		return nil, err
	}
	return &System{programs: programs, hier: h, sink: sink}, nil
}

// DefaultL1 returns the Table I L1 configuration (64 KB, 8-way).
func DefaultL1() cache.Config { return cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8} }

// DefaultL2 returns the Table I L2 configuration (256 KB, 16-way).
func DefaultL2() cache.Config { return cache.Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16} }

// Hierarchy exposes the cache hierarchy (stats, tests).
func (s *System) Hierarchy() *cache.Hierarchy { return s.hier }

// Ops returns the executed instruction-level operation count.
func (s *System) Ops() uint64 { return s.ops }

// MemOps returns the DRAM-level operation count produced so far.
func (s *System) MemOps() uint64 { return s.memOps }

// Step executes one operation on one core.
func (s *System) Step(core int) {
	op := s.programs[core].Next()
	s.ops++
	if op.Flush {
		s.buf = s.hier.Flush(core, op.Addr, s.buf[:0])
	} else {
		s.buf = s.hier.Access(core, op.Addr, op.Write, s.buf[:0])
	}
	for _, m := range s.buf {
		s.memOps++
		s.sink(m)
	}
}

// Run executes n operations round-robin across the cores.
func (s *System) Run(n uint64) {
	cores := len(s.programs)
	core := 0
	for i := uint64(0); i < n; i++ {
		s.Step(core)
		core++
		if core == cores {
			core = 0
		}
	}
}

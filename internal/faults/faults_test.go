package faults_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"tivapromi/internal/faults"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	_ "tivapromi/internal/mitigation/all"
	"tivapromi/internal/rng"
)

// target is a small geometry so tests stay fast.
func target() mitigation.Target {
	return mitigation.Target{Banks: 2, RowsPerBank: 1024, RefInt: 512, FlipThreshold: 4096}
}

func TestParseModelRoundTrip(t *testing.T) {
	for _, m := range append([]faults.Model{faults.None}, faults.Models()...) {
		got, err := faults.ParseModel(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := faults.ParseModel("meteor-strike"); err == nil {
		t.Fatal("unknown model accepted")
	}
	if len(faults.Models()) < 4 {
		t.Fatalf("only %d fault models, the degradation table needs >= 4", len(faults.Models()))
	}
}

func TestPlanValidateAndActive(t *testing.T) {
	if (faults.Plan{}).Active() {
		t.Fatal("zero plan active")
	}
	if !(faults.Plan{Model: faults.StateSEU, Rate: 0.1}).Active() {
		t.Fatal("armed plan inactive")
	}
	if err := (faults.Plan{Model: faults.StateSEU, Rate: 2}).Validate(); err == nil {
		t.Fatal("rate 2 accepted")
	}
	if err := (faults.Plan{Model: faults.StateSEU, Rate: -0.5}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (faults.Plan{Model: faults.WeakCells, Rate: 0.5, Seed: 3}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// drive pushes a deterministic activation stream through a mitigation and
// returns every emitted command.
func drive(m mitigation.Mitigator, seed uint64, intervals int) []mitigation.Command {
	tg := target()
	src := rng.NewXorShift64Star(seed)
	var out []mitigation.Command
	var cmds []mitigation.Command
	for iv := 0; iv < intervals; iv++ {
		if iv%tg.RefInt == 0 {
			m.OnNewWindow()
		}
		for a := 0; a < 16; a++ {
			bank := rng.Intn(src, tg.Banks)
			row := rng.Intn(src, tg.RowsPerBank)
			cmds = m.OnActivate(bank, row, iv, cmds[:0])
			out = append(out, cmds...)
		}
		cmds = m.OnRefreshInterval(iv, cmds[:0])
		out = append(out, cmds...)
	}
	return out
}

func TestHarnessDeterministic(t *testing.T) {
	// Same plan + same stream ⇒ bit-identical command sequence and
	// injection count, for every registered technique.
	for _, name := range mitigation.Names() {
		plan := faults.Plan{Model: faults.StateSEU, Rate: 0.2, Seed: 99}
		factory, err := mitigation.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := faults.Wrap(factory(target(), 7), plan)
		b := faults.Wrap(factory(target(), 7), plan)
		ca, cb := drive(a, 13, 64), drive(b, 13, 64)
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("%s: corrupted runs diverged (%d vs %d commands)", name, len(ca), len(cb))
		}
		if a.Injected != b.Injected {
			t.Fatalf("%s: injection counts diverged: %d vs %d", name, a.Injected, b.Injected)
		}
	}
}

func TestHarnessResetReplays(t *testing.T) {
	plan := faults.Plan{Model: faults.StateSEU, Rate: 0.3, Seed: 5}
	factory, err := mitigation.Lookup("LiPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	h := faults.Wrap(factory(target(), 3), plan)
	first := drive(h, 21, 64)
	inj := h.Injected
	h.Reset()
	if h.Injected != 0 {
		t.Fatal("Reset did not clear the injection counter")
	}
	second := drive(h, 21, 64)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("reset harness did not replay bit-identically")
	}
	if h.Injected != inj {
		t.Fatalf("replayed injection count %d, want %d", h.Injected, inj)
	}
}

func TestHarnessInjectsState(t *testing.T) {
	// Techniques with SRAM state must actually receive upsets at a high
	// rate; the count is the observability hook the sweep reports.
	for _, name := range []string{"LiPRoMi", "CaPRoMi", "CRA"} {
		factory, err := mitigation.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		h := faults.Wrap(factory(target(), 3), faults.Plan{Model: faults.StateSEU, Rate: 1, Seed: 1})
		drive(h, 17, 64)
		if h.Injected == 0 {
			t.Errorf("%s: no state faults landed at rate 1", name)
		}
	}
}

func TestHarnessStuckRNGSuppressesPARA(t *testing.T) {
	// The Loaded Dice non-selection scenario: a stuck-at-ones LFSR makes
	// PARA emit nothing, while the healthy instance triggers.
	factory, err := mitigation.Lookup("PARA")
	if err != nil {
		t.Fatal(err)
	}
	healthy := factory(target(), 3)
	if len(drive(healthy, 11, 256)) == 0 {
		t.Fatal("healthy PARA never triggered; test stream too short")
	}
	stuck := faults.Wrap(factory(target(), 3), faults.Plan{Model: faults.StuckRNG, Rate: 1, Seed: 1})
	if got := drive(stuck, 11, 256); len(got) != 0 {
		t.Fatalf("stuck-RNG PARA still emitted %d commands", len(got))
	}
	// Reset must keep the fault installed: the campaign persists across
	// windows, matching how a real stuck register behaves.
	stuck.Reset()
	if got := drive(stuck, 11, 256); len(got) != 0 {
		t.Fatalf("stuck-RNG PARA recovered after Reset: %d commands", len(got))
	}
}

func TestHarnessInertWithoutPlan(t *testing.T) {
	factory, err := mitigation.Lookup("LoPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	plain := factory(target(), 9)
	wrapped := faults.Wrap(factory(target(), 9), faults.Plan{})
	if !reflect.DeepEqual(drive(plain, 31, 64), drive(wrapped, 31, 64)) {
		t.Fatal("inactive harness perturbed the technique")
	}
	if wrapped.Name() != plain.Name() {
		t.Fatal("harness does not delegate Name")
	}
	if wrapped.TableBytesPerBank() != plain.TableBytesPerBank() {
		t.Fatal("harness does not delegate TableBytesPerBank")
	}
	if wrapped.Inner() == nil {
		t.Fatal("Inner is nil")
	}
}

func TestCommandFilter(t *testing.T) {
	if faults.CommandFilter(faults.Plan{Model: faults.StateSEU, Rate: 1}) != nil {
		t.Fatal("state plan produced a command filter")
	}
	f := faults.CommandFilter(faults.Plan{Model: faults.DropActN, Rate: 0.5, Seed: 4})
	if f == nil {
		t.Fatal("drop plan produced no filter")
	}
	g := faults.CommandFilter(faults.Plan{Model: faults.DropActN, Rate: 0.5, Seed: 4})
	var cmd mitigation.Command
	same := true
	dropped := 0
	for i := 0; i < 1000; i++ {
		a, b := f(cmd), g(cmd)
		if a != b {
			same = false
		}
		if a == memctrl.Drop {
			dropped++
		}
	}
	if !same {
		t.Fatal("equal plans produced different filter decisions")
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("rate-0.5 filter dropped %d/1000", dropped)
	}
}

func TestCorruptingReader(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 4096)

	// Rate 0: transparent.
	clean, err := io.ReadAll(faults.NewCorruptingReader(bytes.NewReader(payload), 0, 1))
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("rate-0 reader altered the stream (err=%v)", err)
	}

	// Rate 1: every byte differs by exactly one bit.
	cr := faults.NewCorruptingReader(bytes.NewReader(payload), 1, 1)
	dirty, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Flipped != uint64(len(payload)) {
		t.Fatalf("Flipped = %d, want %d", cr.Flipped, len(payload))
	}
	for i := range dirty {
		x := dirty[i] ^ payload[i]
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("byte %d: xor %#x is not a single bit", i, x)
		}
	}

	// Determinism: same seed, same corruption.
	again, _ := io.ReadAll(faults.NewCorruptingReader(bytes.NewReader(payload), 1, 1))
	if !bytes.Equal(dirty, again) {
		t.Fatal("corruption not reproducible from seed")
	}
	other, _ := io.ReadAll(faults.NewCorruptingReader(bytes.NewReader(payload), 1, 2))
	if bytes.Equal(dirty, other) {
		t.Fatal("different seeds produced identical corruption")
	}
}

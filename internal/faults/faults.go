// Package faults is a deterministic, seed-driven fault-injection
// framework for the simulator. The paper's mitigations live in
// memory-controller SRAM and draw entropy from hardware LFSRs; this
// package asks what happens when those structures themselves fail:
//
//   - mitigation-state corruption — bit flips in TiVaPRoMi history and
//     counter tables and in TWiCe/CRA counters, modeling SRAM
//     single-event upsets (via mitigation.StateInjectable);
//   - RNG degradation — stuck-at, biased and short-period LFSR output on
//     the hardware Bernoulli path (via mitigation.RandSettable and the
//     fault sources in internal/rng), the Loaded Dice non-selection
//     scenario;
//   - command-path faults — dropped or delayed neighbor-refresh act_n
//     commands between controller and device (via memctrl's command
//     filter), the QPRAC imperfect-service scenario;
//   - weak cells — retention-degraded DRAM rows that flip below the
//     provisioned threshold (via dram.Device.InjectDisturbance);
//   - trace-stream corruption — bit rot on recorded activation traces
//     (see CorruptingReader), exercising internal/trace's hardening.
//
// Every injector draws all randomness from a Plan's seed, so a
// degradation curve is bit-reproducible: same seed, same faults, same
// table.
package faults

import (
	"fmt"

	"tivapromi/internal/dram"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Model identifies one fault model.
type Model int

const (
	// None injects nothing (the baseline row of a degradation table).
	None Model = iota
	// StateSEU flips one bit of live mitigation SRAM state with
	// probability Rate per observed act/ref command.
	StateSEU
	// StuckRNG replaces the decision LFSR with a stuck-at-ones register:
	// probabilistic protection silently stops (non-selection). Rate > 0
	// arms the fault; the rate itself has no further meaning.
	StuckRNG
	// BiasedRNG forces the comparator's high bits on a fraction Rate of
	// the decision draws, suppressing triggers intermittently.
	BiasedRNG
	// PeriodicRNG collapses the LFSR into a cycle of length
	// max(2, round(1/Rate)) — a feedback-tap fault an attacker can
	// phase-lock to.
	PeriodicRNG
	// DropActN discards each mitigation command with probability Rate
	// before it reaches the device.
	DropActN
	// DelayActN postpones each mitigation command with probability Rate
	// to the next refresh-interval boundary.
	DelayActN
	// WeakCells bumps the disturbance of a random row by half the flip
	// threshold with probability Rate per memory access, modeling
	// retention-weakened cells that flip below the provisioned threshold.
	WeakCells
)

// String implements fmt.Stringer with the names used in report tables.
func (m Model) String() string {
	switch m {
	case None:
		return "none"
	case StateSEU:
		return "state-seu"
	case StuckRNG:
		return "stuck-rng"
	case BiasedRNG:
		return "biased-rng"
	case PeriodicRNG:
		return "periodic-rng"
	case DropActN:
		return "drop-actn"
	case DelayActN:
		return "delay-actn"
	case WeakCells:
		return "weak-cells"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Models returns every injecting fault model (None excluded), in
// presentation order.
func Models() []Model {
	return []Model{StateSEU, StuckRNG, BiasedRNG, PeriodicRNG, DropActN, DelayActN, WeakCells}
}

// ParseModel resolves a model by its String name.
func ParseModel(name string) (Model, error) {
	for _, m := range append([]Model{None}, Models()...) {
		if m.String() == name {
			return m, nil
		}
	}
	return None, fmt.Errorf("faults: unknown model %q", name)
}

// Plan describes one fault campaign. The zero value injects nothing.
type Plan struct {
	// Model selects the fault mechanism.
	Model Model
	// Rate is the per-event fault probability (per observed command for
	// StateSEU, per decision draw for BiasedRNG, per mitigation command
	// for Drop/DelayActN, per access for WeakCells; see the Model docs
	// for the two models that interpret it differently).
	Rate float64
	// Seed drives every injector decision. Runs with equal plans and
	// equal simulation seeds are bit-identical.
	Seed uint64
}

// Active reports whether the plan injects anything.
func (p Plan) Active() bool { return p.Model != None && p.Rate > 0 }

// Validate reports malformed plans.
func (p Plan) Validate() error {
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("faults: rate %v out of [0,1]", p.Rate)
	}
	if _, err := ParseModel(p.Model.String()); err != nil {
		return err
	}
	return nil
}

// rate32 converts a probability to 32-bit fixed point for gate draws.
func rate32(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return 1 << 32
	}
	return uint64(rate * float64(uint64(1)<<32))
}

// biasMask is the OR mask BiasedRNG forces into decision draws: the top
// half of a 24-bit comparator window, far above any TiVaPRoMi weight, so
// a biased draw cannot trigger.
const biasMask = uint64(0xfff000)

// degradedSource builds the RNG-fault source for a plan, or nil when the
// plan carries no RNG model.
func degradedSource(p Plan) rng.Source {
	if !p.Active() {
		return nil
	}
	switch p.Model {
	case StuckRNG:
		return rng.NewStuckSource(^uint64(0))
	case BiasedRNG:
		return rng.NewBiasedSource(rng.NewLFSR32(p.Seed^0xdeb1a5), biasMask, p.Rate, p.Seed)
	case PeriodicRNG:
		period := 2
		if p.Rate > 0 && 1/p.Rate > 2 {
			period = int(1/p.Rate + 0.5)
		}
		return rng.NewPeriodicSource(rng.NewLFSR32(p.Seed^0x9e210d), period)
	default:
		return nil
	}
}

// Harness wraps a Mitigator and applies a Plan's state and RNG faults
// while the wrapped technique runs. Command-path and device faults don't
// flow through the mitigation driver protocol; build those with
// CommandFilter and WeakCellInjector instead. The Harness is not safe for
// concurrent use (neither is any Mitigator).
type Harness struct {
	inner mitigation.Mitigator
	plan  Plan
	gate  *rng.XorShift64Star
	inj   *rng.XorShift64Star
	r32   uint64
	// Injected counts applied state faults.
	Injected uint64
}

// Wrap builds a Harness over m. RNG-degradation plans install the
// degraded source immediately when the technique supports it
// (mitigation.RandSettable); techniques without the targeted structure
// pass through unchanged — their degradation curve is flat by
// construction, which is itself a result.
func Wrap(m mitigation.Mitigator, plan Plan) *Harness {
	h := &Harness{inner: m, plan: plan}
	h.rearm()
	return h
}

// rearm (re)builds the injector generators and re-installs RNG faults.
func (h *Harness) rearm() {
	h.gate = rng.NewXorShift64Star(h.plan.Seed ^ 0xfa017)
	h.inj = rng.NewXorShift64Star(h.plan.Seed ^ 0x1f11b)
	h.r32 = 0
	if h.plan.Model == StateSEU {
		h.r32 = rate32(h.plan.Rate)
	}
	if src := degradedSource(h.plan); src != nil {
		if rs, ok := h.inner.(mitigation.RandSettable); ok {
			rs.SetRandSource(src)
		}
	}
}

// Inner returns the wrapped mitigation.
func (h *Harness) Inner() mitigation.Mitigator { return h.inner }

// maybeInject fires a state fault with the plan's per-event probability.
func (h *Harness) maybeInject() {
	if h.r32 == 0 || h.gate.Uint64()&0xffffffff >= h.r32 {
		return
	}
	if si, ok := h.inner.(mitigation.StateInjectable); ok {
		if si.InjectStateFault(h.inj) {
			h.Injected++
		}
	}
}

// Name implements mitigation.Mitigator, delegating so results aggregate
// under the wrapped technique's name.
func (h *Harness) Name() string { return h.inner.Name() }

// OnActivate implements mitigation.Mitigator.
func (h *Harness) OnActivate(bank, row, interval int, cmds []mitigation.Command) []mitigation.Command {
	h.maybeInject()
	return h.inner.OnActivate(bank, row, interval, cmds)
}

// OnRefreshInterval implements mitigation.Mitigator.
func (h *Harness) OnRefreshInterval(interval int, cmds []mitigation.Command) []mitigation.Command {
	h.maybeInject()
	return h.inner.OnRefreshInterval(interval, cmds)
}

// OnNewWindow implements mitigation.Mitigator.
func (h *Harness) OnNewWindow() { h.inner.OnNewWindow() }

// Reset implements mitigation.Mitigator: the wrapped technique resets
// (which reseeds a persisting RNG override) and the injector gates
// restart, so a reset harness replays bit-identically.
func (h *Harness) Reset() {
	h.inner.Reset()
	h.Injected = 0
	h.rearm()
}

// TableBytesPerBank implements mitigation.Mitigator.
func (h *Harness) TableBytesPerBank() int { return h.inner.TableBytesPerBank() }

// CommandFilter returns the memctrl fault filter realizing a command-path
// plan (DropActN/DelayActN), or nil for every other model.
func CommandFilter(plan Plan) func(mitigation.Command) memctrl.Disposition {
	if !plan.Active() {
		return nil
	}
	var verdict memctrl.Disposition
	switch plan.Model {
	case DropActN:
		verdict = memctrl.Drop
	case DelayActN:
		verdict = memctrl.Delay
	default:
		return nil
	}
	gate := rng.NewXorShift64Star(plan.Seed ^ 0xc0de)
	r := rate32(plan.Rate)
	return func(mitigation.Command) memctrl.Disposition {
		if gate.Uint64()&0xffffffff < r {
			return verdict
		}
		return memctrl.Deliver
	}
}

// WeakCellInjector returns a per-access device injector realizing a
// WeakCells plan, or nil for every other model. Each firing bumps a
// uniformly chosen row of a uniformly chosen bank by half the flip
// threshold — that row now flips after half the nominal hammer count.
func WeakCellInjector(plan Plan, dev *dram.Device) func() {
	if !plan.Active() || plan.Model != WeakCells {
		return nil
	}
	p := dev.Params()
	gate := rng.NewXorShift64Star(plan.Seed ^ 0x3eacce)
	pick := rng.NewXorShift64Star(plan.Seed ^ 0x77ea)
	r := rate32(plan.Rate)
	bump := p.FlipThreshold / 2
	if bump == 0 {
		bump = 1
	}
	return func() {
		if gate.Uint64()&0xffffffff < r {
			dev.InjectDisturbance(rng.Intn(pick, p.TotalBanks()), rng.Intn(pick, p.RowsPerBank), bump)
		}
	}
}

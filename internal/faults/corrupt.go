package faults

import (
	"io"

	"tivapromi/internal/rng"
)

// CorruptingReader wraps an io.Reader and flips one random bit in each
// passing byte with probability rate — deterministic bit rot for a trace
// stream (a failing disk, a truncated transfer, a hostile input). It is
// the trace-replay injector: internal/trace's reader must survive any
// output of this wrapper with a typed error, never a panic; the fuzz and
// corruption tests assert exactly that.
type CorruptingReader struct {
	r    io.Reader
	gate *rng.XorShift64Star
	pick *rng.XorShift64Star
	r32  uint64
	// Flipped counts corrupted bytes.
	Flipped uint64
}

// NewCorruptingReader wraps r with a per-byte corruption probability
// (clamped to [0, 1]) driven by seed.
func NewCorruptingReader(r io.Reader, rate float64, seed uint64) *CorruptingReader {
	return &CorruptingReader{
		r:    r,
		gate: rng.NewXorShift64Star(seed ^ 0xb17f11),
		pick: rng.NewXorShift64Star(seed ^ 0x0ddb17),
		r32:  rate32(rate),
	}
}

// Read implements io.Reader.
func (c *CorruptingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	for i := 0; i < n; i++ {
		if c.gate.Uint64()&0xffffffff < c.r32 {
			p[i] ^= 1 << (c.pick.Uint64() & 7)
			c.Flipped++
		}
	}
	return n, err
}

package workload

import (
	"testing"
)

func testAttacker(t *testing.T, planned uint64) *Attacker {
	t.Helper()
	a, err := NewAttacker(DefaultAttackerConfig([]int{1, 3}, testRows, planned, 7))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAttackerConfigValidate(t *testing.T) {
	good := DefaultAttackerConfig([]int{0}, testRows, 1000, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AttackerConfig{
		{TargetBanks: nil, RowsPerBank: testRows, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: 10, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 0, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 5, MaxAggressors: 2, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAttackerRampGrows(t *testing.T) {
	a := testAttacker(t, 10000)
	if got := a.ActiveAggressors(); got != 1 {
		t.Fatalf("initial aggressors = %d, want 1", got)
	}
	for i := 0; i < 5000; i++ {
		a.Next()
	}
	mid := a.ActiveAggressors()
	if mid < 8 || mid > 13 {
		t.Fatalf("mid-campaign aggressors = %d, want ≈10", mid)
	}
	for i := 0; i < 5000; i++ {
		a.Next()
	}
	if got := a.ActiveAggressors(); got != 20 {
		t.Fatalf("final aggressors = %d, want 20 (clamped)", got)
	}
}

func TestAttackerTargetsOnlyConfiguredBanks(t *testing.T) {
	a := testAttacker(t, 10000)
	for i := 0; i < 10000; i++ {
		acc := a.Next()
		if acc.Bank != 1 && acc.Bank != 3 {
			t.Fatalf("attacker hit bank %d", acc.Bank)
		}
	}
}

func TestAttackerAlternatesRowsAtKOne(t *testing.T) {
	// With one active aggressor, consecutive accesses to the same bank
	// must alternate rows — otherwise an open-page controller would
	// absorb the hammer as row hits.
	a, err := NewAttacker(DefaultAttackerConfig([]int{0}, testRows, 1<<40, 7))
	if err != nil {
		t.Fatal(err)
	}
	prev := a.Next()
	for i := 0; i < 1000; i++ {
		cur := a.Next()
		if cur.Row == prev.Row {
			t.Fatalf("same-row consecutive accesses at k=1 (iteration %d)", i)
		}
		prev = cur
	}
}

func TestAttackerHammersAggressorsRoundRobin(t *testing.T) {
	a, err := NewAttacker(AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: testRows,
		MinAggressors: 4, MaxAggressors: 4, PlannedAccesses: 1 << 40,
		BurstAccesses: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[a.Next().Row]++
	}
	agg := a.Aggressors()
	if len(agg) != 4 {
		t.Fatalf("aggressor set size %d, want 4", len(agg))
	}
	// Sequential bursts of 500 over two victim pairs: each of the four
	// aggressor rows gets two 250-access half-bursts in 4000 accesses.
	for _, ra := range agg {
		if counts[ra.Row] < 600 {
			t.Fatalf("aggressor row %d hammered only %d times", ra.Row, counts[ra.Row])
		}
	}
}

func victimLookup(a *Attacker) map[RowAddr]bool {
	set := map[RowAddr]bool{}
	for _, v := range a.Victims() {
		set[v] = true
	}
	return set
}

func TestAggressorsAreVictimNeighbors(t *testing.T) {
	a := testAttacker(t, 1000)
	victims := victimLookup(a)
	for _, ra := range a.Aggressors() {
		if !victims[RowAddr{ra.Bank, ra.Row - 1}] && !victims[RowAddr{ra.Bank, ra.Row + 1}] {
			t.Fatalf("aggressor (b%d, r%d) not adjacent to any victim", ra.Bank, ra.Row)
		}
	}
}

func TestAggressorSetsDisjointFromVictims(t *testing.T) {
	a := testAttacker(t, 1000)
	victims := victimLookup(a)
	for _, ra := range a.Aggressors() {
		if victims[ra] {
			t.Fatalf("row %v is both aggressor and victim", ra)
		}
	}
}

func TestAggressorAccessorsSortedAndDeterministic(t *testing.T) {
	a := testAttacker(t, 1000)
	for name, s := range map[string][]RowAddr{"aggressors": a.Aggressors(), "victims": a.Victims()} {
		if len(s) == 0 {
			t.Fatalf("%s empty", name)
		}
		for i := 1; i < len(s); i++ {
			if s[i].Bank < s[i-1].Bank ||
				(s[i].Bank == s[i-1].Bank && s[i].Row <= s[i-1].Row) {
				t.Fatalf("%s not strictly sorted at %d: %v then %v", name, i, s[i-1], s[i])
			}
		}
	}
	b := testAttacker(t, 1000)
	got, want := a.Aggressors(), b.Aggressors()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aggressor list not deterministic at %d", i)
		}
	}
}

func TestAttackerMatchesEachAggressor(t *testing.T) {
	a := testAttacker(t, 1000)
	seen := map[RowAddr]bool{}
	a.EachAggressor(func(bank, row int) { seen[RowAddr{bank, row}] = true })
	agg := a.Aggressors()
	if len(seen) != len(agg) {
		t.Fatalf("EachAggressor saw %d rows, Aggressors has %d", len(seen), len(agg))
	}
	for _, ra := range agg {
		if !seen[ra] {
			t.Fatalf("Aggressors has %v, EachAggressor never visited it", ra)
		}
	}
}

func TestAttackerReachesHammerRate(t *testing.T) {
	// A sustained campaign must put enough activations on its aggressors
	// to be dangerous: hammering one bank with k=2, all accesses land on
	// the two aggressor rows.
	a, err := NewAttacker(AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: testRows,
		MinAggressors: 2, MaxAggressors: 2, PlannedAccesses: 1 << 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	perRow := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		perRow[a.Next().Row]++
	}
	for _, ra := range a.Aggressors() {
		if perRow[ra.Row] < n/2-1000 {
			t.Fatalf("aggressor %d got %d of %d accesses", ra.Row, perRow[ra.Row], n)
		}
	}
}

package workload

import (
	"testing"
)

func testAttacker(t *testing.T, planned uint64) *Attacker {
	t.Helper()
	a, err := NewAttacker(DefaultAttackerConfig([]int{1, 3}, testRows, planned, 7))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAttackerConfigValidate(t *testing.T) {
	good := DefaultAttackerConfig([]int{0}, testRows, 1000, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AttackerConfig{
		{TargetBanks: nil, RowsPerBank: testRows, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: 10, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 0, MaxAggressors: 20, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 5, MaxAggressors: 2, PlannedAccesses: 1},
		{TargetBanks: []int{0}, RowsPerBank: testRows, MinAggressors: 1, MaxAggressors: 20, PlannedAccesses: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAttackerRampGrows(t *testing.T) {
	a := testAttacker(t, 10000)
	if got := a.ActiveAggressors(); got != 1 {
		t.Fatalf("initial aggressors = %d, want 1", got)
	}
	for i := 0; i < 5000; i++ {
		a.Next()
	}
	mid := a.ActiveAggressors()
	if mid < 8 || mid > 13 {
		t.Fatalf("mid-campaign aggressors = %d, want ≈10", mid)
	}
	for i := 0; i < 5000; i++ {
		a.Next()
	}
	if got := a.ActiveAggressors(); got != 20 {
		t.Fatalf("final aggressors = %d, want 20 (clamped)", got)
	}
}

func TestAttackerTargetsOnlyConfiguredBanks(t *testing.T) {
	a := testAttacker(t, 10000)
	for i := 0; i < 10000; i++ {
		acc := a.Next()
		if acc.Bank != 1 && acc.Bank != 3 {
			t.Fatalf("attacker hit bank %d", acc.Bank)
		}
	}
}

func TestAttackerAlternatesRowsAtKOne(t *testing.T) {
	// With one active aggressor, consecutive accesses to the same bank
	// must alternate rows — otherwise an open-page controller would
	// absorb the hammer as row hits.
	a, err := NewAttacker(DefaultAttackerConfig([]int{0}, testRows, 1<<40, 7))
	if err != nil {
		t.Fatal(err)
	}
	prev := a.Next()
	for i := 0; i < 1000; i++ {
		cur := a.Next()
		if cur.Row == prev.Row {
			t.Fatalf("same-row consecutive accesses at k=1 (iteration %d)", i)
		}
		prev = cur
	}
}

func TestAttackerHammersAggressorsRoundRobin(t *testing.T) {
	a, err := NewAttacker(AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: testRows,
		MinAggressors: 4, MaxAggressors: 4, PlannedAccesses: 1 << 40,
		BurstAccesses: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 4000; i++ {
		counts[a.Next().Row]++
	}
	agg := a.AggressorSet()
	if len(agg) != 4 {
		t.Fatalf("aggressor set size %d, want 4", len(agg))
	}
	// Sequential bursts of 500 over two victim pairs: each of the four
	// aggressor rows gets two 250-access half-bursts in 4000 accesses.
	for key := range agg {
		if counts[key[1]] < 600 {
			t.Fatalf("aggressor row %d hammered only %d times", key[1], counts[key[1]])
		}
	}
}

func TestAggressorsAreVictimNeighbors(t *testing.T) {
	a := testAttacker(t, 1000)
	victims := a.VictimSet()
	for key := range a.AggressorSet() {
		bank, row := key[0], key[1]
		if !victims[[2]int{bank, row - 1}] && !victims[[2]int{bank, row + 1}] {
			t.Fatalf("aggressor (b%d, r%d) not adjacent to any victim", bank, row)
		}
	}
}

func TestAggressorSetsDisjointFromVictims(t *testing.T) {
	a := testAttacker(t, 1000)
	victims := a.VictimSet()
	for key := range a.AggressorSet() {
		if victims[key] {
			t.Fatalf("row %v is both aggressor and victim", key)
		}
	}
}

func TestAttackerReachesHammerRate(t *testing.T) {
	// A sustained campaign must put enough activations on its aggressors
	// to be dangerous: hammering one bank with k=2, all accesses land on
	// the two aggressor rows.
	a, err := NewAttacker(AttackerConfig{
		TargetBanks: []int{0}, RowsPerBank: testRows,
		MinAggressors: 2, MaxAggressors: 2, PlannedAccesses: 1 << 40, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	perRow := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		perRow[a.Next().Row]++
	}
	for key := range a.AggressorSet() {
		if perRow[key[1]] < n/2-1000 {
			t.Fatalf("aggressor %d got %d of %d accesses", key[1], perRow[key[1]], n)
		}
	}
}

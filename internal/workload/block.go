package workload

// Block is a reusable struct-of-arrays access buffer: the unit of trace
// generation for the flat simulation pipeline. Generators fill a Block in
// one pass; the memory-controller lanes then scan its parallel arrays
// without touching Access structs or interfaces, and shard workers can
// scan the same Block concurrently because filling and servicing never
// overlap.
type Block struct {
	Bank []int32
	Row  []int32
	Flag []uint8
	// N is the number of valid entries; the slices may have extra
	// capacity beyond it.
	N int
}

// Flag bits for Block.Flag.
const (
	// FlagWrite marks a write access.
	FlagWrite uint8 = 1 << 0
	// FlagAttacker marks an access issued by the attacker rather than
	// the benign workload.
	FlagAttacker uint8 = 1 << 1
)

// NewBlock returns a block with capacity for n accesses.
func NewBlock(n int) *Block {
	b := &Block{}
	b.Reset(n)
	return b
}

// Reset sizes the block for n accesses, growing the arrays if needed.
// Existing contents are not cleared; every slot [0, n) must be written
// before it is read.
func (b *Block) Reset(n int) {
	if cap(b.Bank) < n {
		b.Bank = make([]int32, n)
		b.Row = make([]int32, n)
		b.Flag = make([]uint8, n)
	}
	b.Bank = b.Bank[:n]
	b.Row = b.Row[:n]
	b.Flag = b.Flag[:n]
	b.N = n
}

// Set stores access a at slot i.
func (b *Block) Set(i int, a Access, attacker bool) {
	b.Bank[i] = int32(a.Bank)
	b.Row[i] = int32(a.Row)
	var f uint8
	if a.Write {
		f = FlagWrite
	}
	if attacker {
		f |= FlagAttacker
	}
	b.Flag[i] = f
}

// At reconstructs the access at slot i (tests and debugging; the hot
// path reads the arrays directly).
func (b *Block) At(i int) Access {
	return Access{
		Bank:  int(b.Bank[i]),
		Row:   int(b.Row[i]),
		Write: b.Flag[i]&FlagWrite != 0,
	}
}

// FillBlock fills b with the next n accesses from g.
func FillBlock(g Generator, b *Block, n int) {
	b.Reset(n)
	for i := 0; i < n; i++ {
		b.Set(i, g.Next(), false)
	}
}

package workload

import "tivapromi/internal/rng"

// SpecMixGen is the devirtualized SPECMix: the same four SPEC-like
// component profiles with the same seeds and the same selector stream,
// but dispatched through a 16-entry pick table and direct (devirtualized)
// method calls instead of a Generator slice and a weight scan. Because
// the Mix selector draws Intn(src, 16) — which is exactly Uint64()>>60 —
// the emitted access stream is bit-identical to SPECMix with the same
// arguments; TestSpecMixGenMatchesSPECMix pins this.
type SpecMixGen struct {
	pick   [16]uint8
	src    *rng.XorShift64Star
	stream Stream
	hot    HotCold
	sten   Stencil
	uni    Uniform
}

// NewSpecMixGen returns the flat SPEC mix generator.
func NewSpecMixGen(banks, rows int, seed uint64) *SpecMixGen {
	g := &SpecMixGen{src: rng.NewXorShift64Star(seed)}
	g.stream = *NewStream(banks, rows, 64, seed+1)
	g.hot = *NewHotCold(banks, rows, 16, 0.9, seed+2)
	g.sten = *NewStencil(banks, rows, 128, seed+3)
	g.uni = *NewUniform(banks, rows, seed+4)
	// Weights 6:8:1:1 over a total of 16, matching SPECMix.
	for i := range g.pick {
		switch {
		case i < 6:
			g.pick[i] = 0 // stream
		case i < 14:
			g.pick[i] = 1 // hotcold
		case i < 15:
			g.pick[i] = 2 // stencil
		default:
			g.pick[i] = 3 // uniform
		}
	}
	return g
}

// Name implements Generator.
func (g *SpecMixGen) Name() string { return "spec-mix" }

// Next implements Generator.
func (g *SpecMixGen) Next() Access {
	switch g.pick[g.src.Uint64()>>60] {
	case 0:
		return g.stream.Next()
	case 1:
		return g.hot.Next()
	case 2:
		return g.sten.Next()
	default:
		return g.uni.Next()
	}
}

// FillBlock fills b with the next n accesses, flagged as benign traffic.
func (g *SpecMixGen) FillBlock(b *Block, n int) {
	b.Reset(n)
	for i := 0; i < n; i++ {
		b.Set(i, g.Next(), false)
	}
}

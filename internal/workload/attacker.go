package workload

import (
	"fmt"

	"tivapromi/internal/rng"
)

// Attacker models the paper's attacker code: cache-flush hammering in the
// style of Kim et al. [12], with the number of aggressor rows per targeted
// bank ramping gradually from MinAggressors to MaxAggressors over the
// planned access budget. Because every attacker access is preceded by a
// CLFLUSH, each one reaches DRAM; aggressors are visited round-robin, so
// consecutive accesses hit different rows and every access is a row
// activation.
type Attacker struct {
	cfg AttackerConfig

	// aggressors[b] lists the full aggressor schedule for targeted bank
	// index b; the active prefix grows with the ramp.
	aggressors [][]int
	victims    [][]int
	conflict   []int // per-bank dummy row forcing row conflicts when k == 1

	issued uint64
	pos    int // round-robin cursor
	bankAt int // round-robin over targeted banks
	src    *rng.XorShift64Star
}

// AttackerConfig describes the attack campaign.
type AttackerConfig struct {
	// TargetBanks are the banks under attack.
	TargetBanks []int
	// RowsPerBank bounds row addresses.
	RowsPerBank int
	// MinAggressors..MaxAggressors is the ramp of aggressor rows per
	// targeted bank (1..20 in the paper).
	MinAggressors int
	MaxAggressors int
	// PlannedAccesses is the access budget over which the ramp completes.
	PlannedAccesses uint64
	// BurstAccesses is how long the attacker dwells on one victim's
	// aggressor pair before rotating to the next victim in the active
	// set. Hammering is sequential (one victim at a time at full rate,
	// like a real flush+reload loop); the ramp only grows the rotation
	// set. Zero selects a default of 65536 — roughly a full refresh
	// window of per-bank hammering, so each victim in the rotation gets
	// a flip-capable dwell when its turn comes.
	BurstAccesses uint64
	// Seed drives victim placement.
	Seed uint64
}

// Validate reports configuration problems.
func (c AttackerConfig) Validate() error {
	switch {
	case len(c.TargetBanks) == 0:
		return fmt.Errorf("workload: attacker needs at least one target bank")
	case c.RowsPerBank < 64:
		return fmt.Errorf("workload: RowsPerBank = %d too small for an attack", c.RowsPerBank)
	case c.MinAggressors < 1 || c.MaxAggressors < c.MinAggressors:
		return fmt.Errorf("workload: bad aggressor ramp [%d, %d]", c.MinAggressors, c.MaxAggressors)
	case c.PlannedAccesses == 0:
		return fmt.Errorf("workload: PlannedAccesses must be positive")
	}
	return nil
}

// DefaultAttackerConfig is the paper's campaign: 1→20 aggressors per
// targeted bank.
func DefaultAttackerConfig(targetBanks []int, rowsPerBank int, planned uint64, seed uint64) AttackerConfig {
	return AttackerConfig{
		TargetBanks:     targetBanks,
		RowsPerBank:     rowsPerBank,
		MinAggressors:   1,
		MaxAggressors:   20,
		PlannedAccesses: planned,
		Seed:            seed,
	}
}

// NewAttacker builds the attacker, placing victims pseudo-randomly but
// well-separated within each targeted bank.
func NewAttacker(cfg AttackerConfig) (*Attacker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BurstAccesses == 0 {
		cfg.BurstAccesses = 65536
	}
	a := &Attacker{
		cfg:        cfg,
		aggressors: make([][]int, len(cfg.TargetBanks)),
		victims:    make([][]int, len(cfg.TargetBanks)),
		conflict:   make([]int, len(cfg.TargetBanks)),
		src:        rng.NewXorShift64Star(cfg.Seed ^ 0xa77ac8),
	}
	nVictims := (cfg.MaxAggressors + 1) / 2
	for b := range cfg.TargetBanks {
		stride := cfg.RowsPerBank / (nVictims + 2)
		offset := 2 + rng.Intn(a.src, stride-2)
		for j := 0; j < nVictims; j++ {
			v := offset + j*stride
			a.victims[b] = append(a.victims[b], v)
			// Double-sided pair: both neighbors of the victim.
			a.aggressors[b] = append(a.aggressors[b], v-1, v+1)
		}
		a.aggressors[b] = a.aggressors[b][:cfg.MaxAggressors]
		a.conflict[b] = (offset + nVictims*stride + stride/2) % cfg.RowsPerBank
	}
	return a, nil
}

// Name implements Generator.
func (a *Attacker) Name() string { return "attacker" }

// ActiveAggressors returns the current aggressor count per targeted bank
// (the ramp position).
func (a *Attacker) ActiveAggressors() int {
	span := a.cfg.MaxAggressors - a.cfg.MinAggressors + 1
	k := a.cfg.MinAggressors + int(uint64(span)*a.issued/a.cfg.PlannedAccesses)
	if k > a.cfg.MaxAggressors {
		k = a.cfg.MaxAggressors
	}
	return k
}

// Next implements Generator: the attacker dwells on one victim's
// aggressor pair per bank (alternating its two sides at full rate — every
// access a row conflict), rotating to the next victim of the active set
// every BurstAccesses. With a single active aggressor, accesses alternate
// with a conflict row so each hammer still causes an activation under an
// open-page controller.
func (a *Attacker) Next() Access {
	k := a.ActiveAggressors()
	a.issued++
	b := a.bankAt
	a.bankAt = (a.bankAt + 1) % len(a.cfg.TargetBanks)
	if b == 0 {
		a.pos++
	}
	return a.accessFor(b, k)
}

func (a *Attacker) accessFor(b, k int) Access {
	bank := a.cfg.TargetBanks[b]
	if k == 1 {
		// Alternate the single aggressor and a conflict row.
		if a.pos&1 == 0 {
			return Access{Bank: bank, Row: a.aggressors[b][0]}
		}
		return Access{Bank: bank, Row: a.conflict[b]}
	}
	// Sequential hammering: burst on one victim's pair, then rotate.
	nv := (k + 1) / 2 // victims covered by k aggressor rows
	vi := int(uint64(a.pos) / a.cfg.BurstAccesses % uint64(nv))
	lo := 2 * vi
	hi := lo + 2
	if hi > k {
		hi = k // odd k: the last victim is hammered single-sided
	}
	pair := a.aggressors[b][lo:hi]
	if len(pair) == 1 {
		if a.pos&1 == 0 {
			return Access{Bank: bank, Row: pair[0]}
		}
		return Access{Bank: bank, Row: a.conflict[b]}
	}
	return Access{Bank: bank, Row: pair[a.pos&1]}
}

// EachAggressor calls fn for every (bank, row) the campaign will ever
// hammer, in deterministic order. The simulation harness uses it to build
// its dense classification bitset without materializing the map
// AggressorSet returns.
func (a *Attacker) EachAggressor(fn func(bank, row int)) {
	for b, bank := range a.cfg.TargetBanks {
		for _, r := range a.aggressors[b] {
			fn(bank, r)
		}
	}
}

// AggressorSet returns every (bank, row) the campaign will ever hammer,
// the ground truth used for false-positive accounting.
func (a *Attacker) AggressorSet() map[[2]int]bool {
	set := make(map[[2]int]bool)
	for b, bank := range a.cfg.TargetBanks {
		for _, r := range a.aggressors[b] {
			set[[2]int{bank, r}] = true
		}
	}
	return set
}

// VictimSet returns every victim (bank, row) of the campaign.
func (a *Attacker) VictimSet() map[[2]int]bool {
	set := make(map[[2]int]bool)
	for b, bank := range a.cfg.TargetBanks {
		for _, v := range a.victims[b] {
			set[[2]int{bank, v}] = true
		}
	}
	return set
}

package workload

import (
	"fmt"
	"sort"

	"tivapromi/internal/rng"
)

// Attacker models the paper's attacker code: cache-flush hammering in the
// style of Kim et al. [12], with the number of aggressor rows per targeted
// bank ramping gradually from MinAggressors to MaxAggressors over the
// planned access budget. Because every attacker access is preceded by a
// CLFLUSH, each one reaches DRAM; aggressors are visited round-robin, so
// consecutive accesses hit different rows and every access is a row
// activation.
//
// The per-access path is division-free: the ramp position and the burst
// rotation are tracked as countdown state updated in place, so Next costs
// a handful of compares and increments rather than two 64-bit divisions.
type Attacker struct {
	cfg AttackerConfig

	// aggressors[b] lists the full aggressor schedule for targeted bank
	// index b; the active prefix grows with the ramp.
	aggressors [][]int
	victims    [][]int
	conflict   []int // per-bank dummy row forcing row conflicts when k == 1

	// The attacker dwells on one victim's aggressor pair per bank for a
	// whole burst (tens of thousands of accesses), alternating two rows by
	// access parity. pairEven/pairOdd cache those two rows per bank index,
	// refreshed only when the dwell target changes (ramp growth or burst
	// rotation), so the per-access path is a parity test and one load
	// instead of re-deriving the rotation window and double-indexing the
	// aggressor schedule.
	tb       []int // cfg.TargetBanks, local for the hot path
	pairEven []int
	pairOdd  []int

	issued uint64
	pos    int // round-robin cursor
	bankAt int // round-robin over targeted banks
	nBanks int
	src    *rng.XorShift64Star

	// Ramp and burst state, kept incrementally so the hot path never
	// divides. curK == MinAggressors + span*issued/PlannedAccesses (capped)
	// at every access, and vi == (pos/BurstAccesses) % nv.
	curK      int
	nextRamp  uint64 // issued count at which curK next grows
	nv        int    // victims covered by curK aggressor rows
	vi        int    // victim index currently being hammered
	burstIdx  uint64 // pos / BurstAccesses
	burstLeft uint64 // accesses until burstIdx advances
}

// AttackerConfig describes the attack campaign.
type AttackerConfig struct {
	// TargetBanks are the banks under attack.
	TargetBanks []int
	// RowsPerBank bounds row addresses.
	RowsPerBank int
	// MinAggressors..MaxAggressors is the ramp of aggressor rows per
	// targeted bank (1..20 in the paper).
	MinAggressors int
	MaxAggressors int
	// PlannedAccesses is the access budget over which the ramp completes.
	PlannedAccesses uint64
	// BurstAccesses is how long the attacker dwells on one victim's
	// aggressor pair before rotating to the next victim in the active
	// set. Hammering is sequential (one victim at a time at full rate,
	// like a real flush+reload loop); the ramp only grows the rotation
	// set. Zero selects a default of 65536 — roughly a full refresh
	// window of per-bank hammering, so each victim in the rotation gets
	// a flip-capable dwell when its turn comes.
	BurstAccesses uint64
	// Seed drives victim placement.
	Seed uint64
}

// Validate reports configuration problems.
func (c AttackerConfig) Validate() error {
	switch {
	case len(c.TargetBanks) == 0:
		return fmt.Errorf("workload: attacker needs at least one target bank")
	case c.RowsPerBank < 64:
		return fmt.Errorf("workload: RowsPerBank = %d too small for an attack", c.RowsPerBank)
	case c.MinAggressors < 1 || c.MaxAggressors < c.MinAggressors:
		return fmt.Errorf("workload: bad aggressor ramp [%d, %d]", c.MinAggressors, c.MaxAggressors)
	case c.PlannedAccesses == 0:
		return fmt.Errorf("workload: PlannedAccesses must be positive")
	}
	return nil
}

// DefaultAttackerConfig is the paper's campaign: 1→20 aggressors per
// targeted bank.
func DefaultAttackerConfig(targetBanks []int, rowsPerBank int, planned uint64, seed uint64) AttackerConfig {
	return AttackerConfig{
		TargetBanks:     targetBanks,
		RowsPerBank:     rowsPerBank,
		MinAggressors:   1,
		MaxAggressors:   20,
		PlannedAccesses: planned,
		Seed:            seed,
	}
}

// NewAttacker builds the attacker, placing victims pseudo-randomly but
// well-separated within each targeted bank.
func NewAttacker(cfg AttackerConfig) (*Attacker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BurstAccesses == 0 {
		cfg.BurstAccesses = 65536
	}
	a := &Attacker{
		cfg:        cfg,
		aggressors: make([][]int, len(cfg.TargetBanks)),
		victims:    make([][]int, len(cfg.TargetBanks)),
		conflict:   make([]int, len(cfg.TargetBanks)),
		nBanks:     len(cfg.TargetBanks),
		src:        rng.NewXorShift64Star(cfg.Seed ^ 0xa77ac8),
	}
	nVictims := (cfg.MaxAggressors + 1) / 2
	for b := range cfg.TargetBanks {
		stride := cfg.RowsPerBank / (nVictims + 2)
		offset := 2 + rng.Intn(a.src, stride-2)
		for j := 0; j < nVictims; j++ {
			v := offset + j*stride
			a.victims[b] = append(a.victims[b], v)
			// Double-sided pair: both neighbors of the victim.
			a.aggressors[b] = append(a.aggressors[b], v-1, v+1)
		}
		a.aggressors[b] = a.aggressors[b][:cfg.MaxAggressors]
		a.conflict[b] = (offset + nVictims*stride + stride/2) % cfg.RowsPerBank
	}
	a.curK = cfg.MinAggressors
	a.nv = (a.curK + 1) / 2
	a.nextRamp = a.rampAt(1)
	a.burstLeft = cfg.BurstAccesses
	a.tb = append([]int(nil), cfg.TargetBanks...)
	a.pairEven = make([]int, a.nBanks)
	a.pairOdd = make([]int, a.nBanks)
	a.refreshPairs()
	return a, nil
}

// rampAt returns the issued count at which the ramp reaches
// MinAggressors+j: the smallest issued with span*issued/Planned >= j.
func (a *Attacker) rampAt(j int) uint64 {
	span := uint64(a.cfg.MaxAggressors - a.cfg.MinAggressors + 1)
	return (uint64(j)*a.cfg.PlannedAccesses + span - 1) / span
}

// advanceRamp catches curK up with the analytic ramp position.
func (a *Attacker) advanceRamp() {
	for a.issued >= a.nextRamp && a.curK < a.cfg.MaxAggressors {
		a.curK++
		a.nv = (a.curK + 1) / 2
		a.vi = int(a.burstIdx % uint64(a.nv))
		a.nextRamp = a.rampAt(a.curK - a.cfg.MinAggressors + 1)
	}
	a.refreshPairs()
}

// refreshPairs recomputes the cached per-bank (even, odd) dwell rows from
// the current ramp position and rotation index. Called only when those
// change — once per ramp step and once per burst.
func (a *Attacker) refreshPairs() {
	k := a.curK
	for b := range a.tb {
		var even, odd int
		if k == 1 {
			// Alternate the single aggressor and a conflict row.
			even, odd = a.aggressors[b][0], a.conflict[b]
		} else {
			lo := 2 * a.vi
			hi := lo + 2
			if hi > k {
				hi = k // odd k: the last victim is hammered single-sided
			}
			if hi-lo == 1 {
				even, odd = a.aggressors[b][lo], a.conflict[b]
			} else {
				even, odd = a.aggressors[b][lo], a.aggressors[b][lo+1]
			}
		}
		a.pairEven[b], a.pairOdd[b] = even, odd
	}
}

// Name implements Generator.
func (a *Attacker) Name() string { return "attacker" }

// ActiveAggressors returns the current aggressor count per targeted bank
// (the ramp position).
func (a *Attacker) ActiveAggressors() int {
	span := a.cfg.MaxAggressors - a.cfg.MinAggressors + 1
	k := a.cfg.MinAggressors + int(uint64(span)*a.issued/a.cfg.PlannedAccesses)
	if k > a.cfg.MaxAggressors {
		k = a.cfg.MaxAggressors
	}
	return k
}

// Next implements Generator: the attacker dwells on one victim's
// aggressor pair per bank (alternating its two sides at full rate — every
// access a row conflict), rotating to the next victim of the active set
// every BurstAccesses. With a single active aggressor, accesses alternate
// with a conflict row so each hammer still causes an activation under an
// open-page controller.
func (a *Attacker) Next() Access {
	if a.issued >= a.nextRamp && a.curK < a.cfg.MaxAggressors {
		a.advanceRamp()
	}
	a.issued++
	b := a.bankAt
	a.bankAt++
	if a.bankAt == a.nBanks {
		a.bankAt = 0
	}
	if b == 0 {
		a.pos++
		a.burstLeft--
		if a.burstLeft == 0 {
			a.burstLeft = a.cfg.BurstAccesses
			a.burstIdx++
			a.vi = int(a.burstIdx % uint64(a.nv))
			a.refreshPairs()
		}
	}
	if a.pos&1 == 0 {
		return Access{Bank: a.tb[b], Row: a.pairEven[b]}
	}
	return Access{Bank: a.tb[b], Row: a.pairOdd[b]}
}

// EachAggressor calls fn for every (bank, row) the campaign will ever
// hammer, in deterministic order. The simulation harness uses it to build
// its dense classification bitset without materializing a set.
func (a *Attacker) EachAggressor(fn func(bank, row int)) {
	for b, bank := range a.cfg.TargetBanks {
		for _, r := range a.aggressors[b] {
			fn(bank, r)
		}
	}
}

// RowAddr identifies one row within one bank.
type RowAddr struct {
	Bank int
	Row  int
}

// Aggressors returns every (bank, row) the campaign will ever hammer —
// the ground truth used for false-positive accounting — sorted by bank
// then row. The slice is freshly allocated; callers may keep it.
func (a *Attacker) Aggressors() []RowAddr {
	out := make([]RowAddr, 0, len(a.cfg.TargetBanks)*a.cfg.MaxAggressors)
	for b, bank := range a.cfg.TargetBanks {
		for _, r := range a.aggressors[b] {
			out = append(out, RowAddr{Bank: bank, Row: r})
		}
	}
	sortRowAddrs(out)
	return out
}

// Victims returns every victim (bank, row) of the campaign, sorted by
// bank then row.
func (a *Attacker) Victims() []RowAddr {
	out := make([]RowAddr, 0, len(a.cfg.TargetBanks)*len(a.victims[0]))
	for b, bank := range a.cfg.TargetBanks {
		for _, v := range a.victims[b] {
			out = append(out, RowAddr{Bank: bank, Row: v})
		}
	}
	sortRowAddrs(out)
	return out
}

func sortRowAddrs(s []RowAddr) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Bank != s[j].Bank {
			return s[i].Bank < s[j].Bank
		}
		return s[i].Row < s[j].Row
	})
}

package workload

import (
	"testing"
)

const (
	testBanks = 4
	testRows  = 16384
)

func inRange(t *testing.T, g Generator, n int) map[int]int {
	t.Helper()
	bankCounts := map[int]int{}
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Bank < 0 || a.Bank >= testBanks || a.Row < 0 || a.Row >= testRows {
			t.Fatalf("%s produced out-of-range access %+v", g.Name(), a)
		}
		bankCounts[a.Bank]++
	}
	return bankCounts
}

func TestUniformSpreads(t *testing.T) {
	g := NewUniform(testBanks, testRows, 1)
	counts := inRange(t, g, 40000)
	for b := 0; b < testBanks; b++ {
		if counts[b] < 8000 || counts[b] > 12000 {
			t.Fatalf("bank %d got %d of 40000 accesses", b, counts[b])
		}
	}
}

func TestStreamHasRowRuns(t *testing.T) {
	g := NewStream(testBanks, testRows, 64, 1)
	prev := g.Next()
	sameRow := 0
	for i := 0; i < 6400; i++ {
		a := g.Next()
		if a.Bank == prev.Bank && a.Row == prev.Row {
			sameRow++
		}
		prev = a
	}
	// With burst 64, ≈63/64 of consecutive pairs share a row.
	if sameRow < 6000 {
		t.Fatalf("stream locality too low: %d of 6400 same-row pairs", sameRow)
	}
}

func TestStreamAdvancesThroughRows(t *testing.T) {
	g := NewStream(1, 128, 2, 1)
	rows := map[int]bool{}
	for i := 0; i < 128*2+2; i++ {
		rows[g.Next().Row] = true
	}
	if len(rows) < 100 {
		t.Fatalf("stream visited only %d distinct rows", len(rows))
	}
}

func TestHotColdConcentration(t *testing.T) {
	g := NewHotCold(testBanks, testRows, 64, 0.9, 7)
	counts := map[[2]int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		a := g.Next()
		counts[[2]int{a.Bank, a.Row}]++
	}
	// Top-64 locations should hold the hot fraction (~90%).
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	top := 0
	for i := 0; i < 64 && len(all) > 0; i++ {
		best := 0
		for j, c := range all {
			if c > all[best] {
				best = j
			}
		}
		top += all[best]
		all[best] = all[len(all)-1]
		all = all[:len(all)-1]
	}
	if float64(top)/n < 0.75 {
		t.Fatalf("hot set absorbed only %.0f%% of accesses", 100*float64(top)/n)
	}
}

func TestHotColdClampsFraction(t *testing.T) {
	// Out-of-range fractions are clamped, not rejected: generators are
	// exploratory tools.
	g := NewHotCold(testBanks, testRows, 4, 1.5, 1)
	inRange(t, g, 1000)
	g = NewHotCold(testBanks, testRows, 4, -1, 1)
	inRange(t, g, 1000)
}

func TestStencilStaysInBand(t *testing.T) {
	g := NewStencil(testBanks, testRows, 64, 3)
	// Consecutive accesses should be near each other most of the time.
	prev := g.Next()
	near := 0
	const n = 10000
	for i := 0; i < n; i++ {
		a := g.Next()
		d := a.Row - prev.Row
		if d < 0 {
			d = -d
		}
		if a.Bank == prev.Bank && d <= 65 {
			near++
		}
		prev = a
	}
	if float64(near)/n < 0.9 {
		t.Fatalf("stencil locality too low: %d/%d", near, n)
	}
}

func TestMixUsesAllComponents(t *testing.T) {
	a := NewUniform(1, 100, 1)
	b := NewUniform(1, 100, 2)
	m := NewMix("m", []Generator{a, b}, []int{1, 3}, 9)
	if m.Name() != "m" {
		t.Fatal("name lost")
	}
	for i := 0; i < 1000; i++ {
		m.Next()
	}
	// Both substreams consumed (weights 1:3 → roughly 250/750).
	// We can't observe the split directly, but determinism is checkable:
	m2 := NewMix("m", []Generator{NewUniform(1, 100, 1), NewUniform(1, 100, 2)}, []int{1, 3}, 9)
	for i := 0; i < 1000; i++ {
		m2.Next()
	}
	if m.Next() != m2.Next() {
		t.Fatal("mix not deterministic in seeds")
	}
}

func TestMixPanicsOnBadInputs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMix("x", nil, nil, 1) },
		func() { NewMix("x", []Generator{NewUniform(1, 10, 1)}, []int{1, 2}, 1) },
		func() { NewMix("x", []Generator{NewUniform(1, 10, 1)}, []int{0}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad mix accepted")
				}
			}()
			fn()
		}()
	}
}

func TestSPECMixProducesValidStream(t *testing.T) {
	g := SPECMix(testBanks, testRows, 42)
	inRange(t, g, 50000)
}

func TestSPECMixDeterminism(t *testing.T) {
	a := SPECMix(testBanks, testRows, 5)
	b := SPECMix(testBanks, testRows, 5)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("diverged at access %d", i)
		}
	}
}

func TestSpecMixGenMatchesSPECMix(t *testing.T) {
	// The devirtualized generator must emit the exact stream of the
	// interface-dispatched Mix it replaces.
	flat := NewSpecMixGen(testBanks, testRows, 42)
	ref := SPECMix(testBanks, testRows, 42)
	for i := 0; i < 50000; i++ {
		if a, b := flat.Next(), ref.Next(); a != b {
			t.Fatalf("diverged at access %d: flat %v, mix %v", i, a, b)
		}
	}
}

func TestBlockFillRoundTrips(t *testing.T) {
	g := NewSpecMixGen(testBanks, testRows, 7)
	ref := NewSpecMixGen(testBanks, testRows, 7)
	b := NewBlock(16)
	g.FillBlock(b, 1000) // must grow past initial capacity
	if b.N != 1000 || len(b.Bank) != 1000 || len(b.Row) != 1000 || len(b.Flag) != 1000 {
		t.Fatalf("block sized %d/%d/%d/%d, want 1000", b.N, len(b.Bank), len(b.Row), len(b.Flag))
	}
	for i := 0; i < b.N; i++ {
		if want := ref.Next(); b.At(i) != want {
			t.Fatalf("slot %d = %v, want %v", i, b.At(i), want)
		}
		if b.Flag[i]&FlagAttacker != 0 {
			t.Fatalf("benign fill set attacker flag at %d", i)
		}
	}
	// Reuse without reallocation.
	bank := &b.Bank[0]
	b.Reset(500)
	if &b.Bank[0] != bank {
		t.Fatal("Reset reallocated despite sufficient capacity")
	}
	// Attacker flag round-trips through Set.
	b.Set(0, Access{Bank: 1, Row: 2, Write: true}, true)
	if b.Flag[0] != FlagWrite|FlagAttacker {
		t.Fatalf("flags = %b", b.Flag[0])
	}
}

func TestAccessString(t *testing.T) {
	if s := (Access{Bank: 1, Row: 2, Write: true}).String(); s != "W b1 r2" {
		t.Fatalf("String = %q", s)
	}
	if s := (Access{Bank: 3, Row: 4}).String(); s != "R b3 r4" {
		t.Fatalf("String = %q", s)
	}
}

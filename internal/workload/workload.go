// Package workload generates DRAM-level access streams: the synthetic
// stand-in for the paper's gem5 traces of a SPEC CPU2006 mixed load plus
// an attacker using cache flushing.
//
// Generators produce post-cache accesses (bank, row, read/write). The
// statistical profiles are calibrated so the resulting row-activation
// statistics match what the paper reports for its traces: an average of
// ≈40 activations per refresh interval on busy banks, a hard ceiling of
// 165 (DDR4 timing), and strong row locality for the SPEC-like part.
// The attacker bypasses the cache with CLFLUSH, so its stream is 1:1 with
// its instruction stream by construction.
package workload

import (
	"fmt"

	"tivapromi/internal/rng"
)

// carve32 reduces 32 bits of entropy to a uniform value in [0, n) with
// the same multiply-shift reduction rng.Intn uses, letting a generator
// split one 64-bit draw into several independent fields instead of
// drawing once per field.
func carve32(x uint32, n int) int { return int(uint64(x) * uint64(n) >> 32) }

// Access is one DRAM-level access.
type Access struct {
	Bank  int
	Row   int
	Write bool
}

// Generator produces an access stream. Implementations are deterministic
// in their seed and not safe for concurrent use.
type Generator interface {
	// Name identifies the generator in reports.
	Name() string
	// Next returns the next access.
	Next() Access
}

// Uniform spreads accesses uniformly over all banks and rows — the
// worst case for row locality, used in robustness tests.
type Uniform struct {
	banks, rows int
	src         *rng.XorShift64Star
}

// NewUniform returns a uniform generator.
func NewUniform(banks, rows int, seed uint64) *Uniform {
	return &Uniform{banks: banks, rows: rows, src: rng.NewXorShift64Star(seed)}
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Next implements Generator. One draw per access: the bank is reduced
// from the high word, the row from the low word, and the write bit from
// the low bits of the high word — bits the bank reduction (a multiply-
// shift, dominated by the word's top bits) barely consults.
func (u *Uniform) Next() Access {
	x := u.src.Uint64()
	return Access{
		Bank:  carve32(uint32(x>>32), u.banks),
		Row:   carve32(uint32(x), u.rows),
		Write: (x>>32)&7 == 0, // ~12% writes
	}
}

// Stream models a streaming kernel (libquantum/bwaves-like): long
// sequential runs through a region, staying on each row for Burst
// consecutive accesses (which the open row absorbs as row hits) before
// moving to the next row.
type Stream struct {
	banks, rows int
	burst       int
	bank, row   int
	left        int
	src         *rng.XorShift64Star
}

// NewStream returns a streaming generator with the given per-row burst
// length (accesses per row before advancing).
func NewStream(banks, rows, burst int, seed uint64) *Stream {
	if burst < 1 {
		burst = 1
	}
	s := &Stream{banks: banks, rows: rows, burst: burst, src: rng.NewXorShift64Star(seed)}
	s.bank = rng.Intn(s.src, banks)
	s.row = rng.Intn(s.src, rows)
	return s
}

// Name implements Generator.
func (s *Stream) Name() string { return "stream" }

// Next implements Generator.
func (s *Stream) Next() Access {
	if s.left == 0 {
		s.left = s.burst
		s.row++
		if s.row >= s.rows {
			s.row = 0
			s.bank = (s.bank + 1) % s.banks
		}
	}
	s.left--
	return Access{Bank: s.bank, Row: s.row, Write: s.src.Uint64()&3 == 0}
}

// HotCold models pointer-heavy SPEC behavior (mcf/omnetpp-like): a small
// hot working set absorbs most accesses, the rest scatter uniformly.
type HotCold struct {
	banks, rows int
	hotRows     []int32
	hotBanks    []int16
	hotWeight   uint64 // fixed-point (32-bit) probability of a hot access
	src         *rng.XorShift64Star
}

// NewHotCold returns a hot/cold generator with hotFrac of accesses going
// to a hot set of hotSet (bank,row) pairs.
func NewHotCold(banks, rows, hotSet int, hotFrac float64, seed uint64) *HotCold {
	if hotSet < 1 {
		hotSet = 1
	}
	if hotFrac < 0 {
		hotFrac = 0
	}
	if hotFrac > 1 {
		hotFrac = 1
	}
	h := &HotCold{
		banks:     banks,
		rows:      rows,
		hotRows:   make([]int32, hotSet),
		hotBanks:  make([]int16, hotSet),
		hotWeight: uint64(hotFrac * float64(1<<32)),
		src:       rng.NewXorShift64Star(seed),
	}
	for i := range h.hotRows {
		h.hotRows[i] = int32(rng.Intn(h.src, rows))
		h.hotBanks[i] = int16(rng.Intn(h.src, banks))
	}
	return h
}

// Name implements Generator.
func (h *HotCold) Name() string { return "hotcold" }

// Next implements Generator. Two draws per access: the first carries the
// write bit (low bits) and the hot/cold decision (high word); the second
// either picks the hot-set index or scatters over the cold space.
func (h *HotCold) Next() Access {
	x := h.src.Uint64()
	write := x&7 < 2 // 25% writes
	if x>>32 < h.hotWeight {
		// Strong preference for low hot-set indices (minimum of three
		// independent 21-bit lanes of one draw), giving a few very hot
		// rows — the head of the Zipf-like popularity curve real traces
		// show.
		y := h.src.Uint64()
		n := uint64(len(h.hotRows))
		i := (y & 0x1fffff) * n >> 21
		if j := (y >> 21 & 0x1fffff) * n >> 21; j < i {
			i = j
		}
		if j := (y >> 42 & 0x1fffff) * n >> 21; j < i {
			i = j
		}
		return Access{Bank: int(h.hotBanks[i]), Row: int(h.hotRows[i]), Write: write}
	}
	y := h.src.Uint64()
	return Access{
		Bank:  carve32(uint32(y>>32), h.banks),
		Row:   carve32(uint32(y), h.rows),
		Write: write,
	}
}

// Stencil models a structured-grid kernel (leslie3d-like): repeated sweeps
// over a band of rows with neighbor touches, producing medium row
// locality with revisits.
type Stencil struct {
	banks, rows int
	base        int
	span        int
	pos         int
	bank        int
	src         *rng.XorShift64Star
}

// NewStencil returns a stencil generator sweeping a span of rows.
func NewStencil(banks, rows, span int, seed uint64) *Stencil {
	if span < 3 {
		span = 3
	}
	if span > rows {
		span = rows
	}
	s := &Stencil{banks: banks, rows: rows, span: span, src: rng.NewXorShift64Star(seed)}
	s.base = rng.Intn(s.src, rows-span+1)
	s.bank = rng.Intn(s.src, banks)
	return s
}

// Name implements Generator.
func (s *Stencil) Name() string { return "stencil" }

// Next implements Generator. One draw per access carries the halo choice
// and the write bit in disjoint low bits; only the rare band move at the
// end of a sweep draws again.
func (s *Stencil) Next() Access {
	// Visit pos, with occasional touches of pos±1 (the stencil halo).
	row := s.base + s.pos
	x := s.src.Uint64()
	switch x & 7 {
	case 0:
		if row+1 < s.rows {
			row++
		}
	case 1:
		if row > 0 {
			row--
		}
	}
	s.pos++
	if s.pos >= s.span {
		s.pos = 0
		// Occasionally move the band and bank, like a new time step on a
		// different tile.
		if s.src.Uint64()&15 == 0 {
			s.base = rng.Intn(s.src, s.rows-s.span+1)
			s.bank = rng.Intn(s.src, s.banks)
		}
	}
	return Access{Bank: s.bank, Row: row, Write: x>>3&1 == 0}
}

// Mix interleaves several generators with integer weights, modeling the
// paper's "SPEC CPU2006 mixed load" across four cores.
type Mix struct {
	name    string
	gens    []Generator
	weights []int
	total   int
	src     *rng.XorShift64Star
}

// NewMix builds a weighted interleave. It panics if inputs are mismatched
// or empty; workload composition is static experiment configuration.
func NewMix(name string, gens []Generator, weights []int, seed uint64) *Mix {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("workload: mix needs matching non-empty generators and weights")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			panic("workload: non-positive mix weight")
		}
		total += w
	}
	return &Mix{name: name, gens: gens, weights: weights, total: total,
		src: rng.NewXorShift64Star(seed)}
}

// Name implements Generator.
func (m *Mix) Name() string { return m.name }

// Next implements Generator.
func (m *Mix) Next() Access {
	pick := rng.Intn(m.src, m.total)
	for i, w := range m.weights {
		if pick < w {
			return m.gens[i].Next()
		}
		pick -= w
	}
	return m.gens[len(m.gens)-1].Next() // unreachable
}

// SPECMix returns the default mixed load used by the experiments: four
// SPEC-like profiles with weights roughly matching a 4-core mix of
// memory-bound and locality-bound benchmarks.
func SPECMix(banks, rows int, seed uint64) *Mix {
	return NewMix("spec-mix",
		[]Generator{
			NewStream(banks, rows, 64, seed+1),
			NewHotCold(banks, rows, 16, 0.9, seed+2),
			NewStencil(banks, rows, 128, seed+3),
			NewUniform(banks, rows, seed+4),
		},
		[]int{6, 8, 1, 1},
		seed,
	)
}

// String renders an access for debugging.
func (a Access) String() string {
	op := "R"
	if a.Write {
		op = "W"
	}
	return fmt.Sprintf("%s b%d r%d", op, a.Bank, a.Row)
}

package chaostest

import (
	"context"
	"testing"
)

// TestTortureRunByteIdentical is the harness's own acceptance test: a
// short kill/corrupt/resume torture run must converge to the undisturbed
// report, byte for byte.
func TestTortureRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run in -short mode")
	}
	rep, err := Run(context.Background(), Config{
		Seed:    7,
		Cycles:  2,
		Corrupt: true,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 2 {
		t.Fatalf("cycles = %d, want 2", rep.Cycles)
	}
	if !rep.Identical {
		t.Fatal("final resumed report is not byte-identical to the golden run")
	}
	if rep.GoldenBytes == 0 {
		t.Fatal("golden report is empty")
	}
	if rep.Corruptions == 0 {
		t.Fatal("corrupting torture run flipped no bytes")
	}
	// The deliberate byte flips alone guarantee quarantined corpses.
	if rep.Quarantined == 0 {
		t.Fatal("corruption left no quarantined checkpoint behind")
	}
}

// TestTortureRunKillScheduleReproducible pins what the harness promises
// across same-seed runs: the kill schedule and the end state. (The exact
// fault tally is NOT pinned — campaign workers race the kill switch, so
// the number of I/O operations reaching the chaos filesystem before the
// cancel lands varies; per-operation fault determinism is pinned in
// internal/iofault instead.)
func TestTortureRunKillScheduleReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("torture run in -short mode")
	}
	run := func() Report {
		rep, err := Run(context.Background(), Config{
			Seed: 21, Cycles: 1, Corrupt: false, Dir: t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Kills != b.Kills || a.Cycles != b.Cycles {
		t.Fatalf("same seed, different kill schedules:\n%+v\n%+v", a, b)
	}
	if a.GoldenBytes != b.GoldenBytes {
		t.Fatalf("golden runs disagree: %d vs %d bytes", a.GoldenBytes, b.GoldenBytes)
	}
	if !a.Identical || !b.Identical {
		t.Fatal("non-corrupting torture run failed byte identity")
	}
}

func TestChaosOddsSeeded(t *testing.T) {
	if chaosOdds(1).Seed != 1 || chaosOdds(9).Seed != 9 {
		t.Fatal("chaosOdds does not thread the cycle seed")
	}
}

// Package chaostest is the crash-consistency torture harness: it runs a
// real in-process campaign (actual simulation cells, actual checkpoint)
// against the fault-injecting filesystem of internal/iofault, kills the
// campaign at randomized checkpoint-flush boundaries, corrupts checkpoint
// bytes between cycles, resumes from whatever survived, and finally
// verifies that the resumed-and-finished report is byte-identical to an
// undisturbed run.
//
// Byte identity is the strongest end-to-end statement the persistence
// layer can make: every salvage decision, every quarantine, every
// re-executed seed must converge on exactly the output a never-failing
// machine produces. The whole schedule — fault draws, kill points,
// corruption offsets — derives from one master seed, so every torture
// run is reproducible from its seed.
package chaostest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tivapromi/internal/campaign"
	"tivapromi/internal/dram"
	"tivapromi/internal/iofault"
	"tivapromi/internal/report"
	"tivapromi/internal/rng"
	"tivapromi/internal/sim"
)

// Config tunes one torture run.
type Config struct {
	// Seed drives the whole torture schedule: fault probabilities draws,
	// kill commit ordinals, and corruption offsets.
	Seed uint64
	// Cycles is the number of kill/resume cycles before the clean final
	// run (≤ 0 means 3).
	Cycles int
	// Corrupt additionally flips one byte of the on-disk checkpoint
	// between cycles, exercising the salvage/quarantine path on top of
	// the injected write faults.
	Corrupt bool
	// Workers bounds campaign concurrency (0 = GOMAXPROCS).
	Workers int
	// Sections names the report sections forming the campaign (empty =
	// a compact default mixing sweeps and probes).
	Sections []string
	// Eval is the evaluation scale; the zero value selects
	// TestScaleEval, which keeps a full torture run in CI-sized time.
	Eval campaign.Eval
	// Dir is the working directory for the checkpoint and its
	// quarantined corpses ("" = a fresh temp directory).
	Dir string
	// Log, when non-nil, receives the harness's progress narration.
	Log io.Writer
}

// Report summarizes one torture run.
type Report struct {
	// Cycles is the number of kill/resume cycles executed.
	Cycles int
	// Kills counts cycles the kill switch actually fired in (a cycle
	// whose campaign finished before its kill ordinal counts as a
	// survivor, not a kill).
	Kills int
	// Corruptions counts deliberate post-cycle byte flips applied to the
	// on-disk checkpoint.
	Corruptions int
	// Faults aggregates every fault the chaos filesystem injected across
	// all cycles.
	Faults iofault.ChaosStats
	// Quarantined counts `<checkpoint>.corrupt-*` files left behind by
	// salvage — the forensic corpses of detected corruption.
	Quarantined int
	// GoldenBytes is the length of the undisturbed reference report.
	GoldenBytes int
	// Identical reports whether the final resumed run reproduced the
	// reference byte for byte.
	Identical bool
}

// TestScaleEval is the quarter-scale evaluation the torture harness (and
// CI) runs at: the campaign's structure — cells, checkpoints, renders —
// is what is under torture, not the device physics.
func TestScaleEval() campaign.Eval {
	ev := campaign.DefaultEval()
	ev.SeedsPerPoint = 1
	ev.Base.Windows = 1
	ev.Trials = 2
	p := dram.ScaledParams()
	p.RowsPerBank /= 4
	p.RefInt /= 4
	p.FlipThreshold /= 4
	ev.Base.Params = p
	ev.Probe = p
	ev.Thresholds = []uint32{p.FlipThreshold, p.FlipThreshold / 2}
	return ev
}

// DefaultSections is the compact section mix the harness tortures by
// default: FSM probes (table2), seed sweeps plus security probes
// (table3), and the flooding trials — every checkpoint entry kind
// (sweep seed, probe, output) gets exercised.
func DefaultSections() []string { return []string{"table2", "table3", "flooding"} }

// chaosOdds is the per-operation fault mix one torture cycle runs under.
// The rates are deliberately moderate: high enough that a multi-flush
// cycle reliably draws several faults, low enough that checkpoints still
// make forward progress between failures.
func chaosOdds(seed uint64) iofault.ChaosConfig {
	return iofault.ChaosConfig{
		Seed:       seed,
		TornWrite:  0.04,
		ShortWrite: 0.03,
		WriteErr:   0.03,
		NoSpace:    0.02,
		RenameFail: 0.03,
		FsyncLoss:  0.03,
		BitFlip:    0.02,
	}
}

// Run executes the torture protocol:
//
//  1. reference: run the campaign undisturbed (no checkpoint, clean FS)
//     and render the report — the golden bytes;
//  2. cycles: repeatedly run the same campaign with a checkpoint on the
//     chaos filesystem, killing the run at a seeded checkpoint-commit
//     ordinal and (optionally) flipping a checkpoint byte afterwards;
//  3. final: resume once more on a clean filesystem, let the campaign
//     finish, render, and compare against the golden bytes.
//
// A non-nil error means the protocol itself failed or — the finding the
// harness exists for — the final report was not byte-identical.
func Run(ctx context.Context, cfg Config) (Report, error) {
	var rep Report
	if ctx == nil {
		ctx = context.Background()
	}
	cycles := cfg.Cycles
	if cycles <= 0 {
		cycles = 3
	}
	names := cfg.Sections
	if len(names) == 0 {
		names = DefaultSections()
	}
	ev := cfg.Eval
	if ev.SeedsPerPoint == 0 {
		ev = TestScaleEval()
	}
	var specs []campaign.Spec
	for _, name := range names {
		def, ok := report.Section(name)
		if !ok {
			return rep, fmt.Errorf("chaostest: unknown section %q", name)
		}
		specs = append(specs, def.Spec(ev))
	}
	merged := campaign.Merge("chaos", specs...)

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaostest-*")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return rep, err
	}
	ckpt := filepath.Join(dir, "checkpoint.json")
	master := rng.NewXorShift64Star(cfg.Seed ^ 0xc4a057e57)

	// Phase 1: the undisturbed reference.
	logf(cfg.Log, "chaostest: reference run (%d cells)", len(merged.Cells))
	golden, err := runAndRender(ctx, merged, ev, names, sim.NewRunner(), cfg.Workers)
	if err != nil {
		return rep, fmt.Errorf("chaostest: reference run: %w", err)
	}
	rep.GoldenBytes = len(golden)

	// Phase 2: kill/resume cycles under injected faults.
	for cycle := 0; cycle < cycles; cycle++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Cycles++
		fsys := iofault.NewChaos(nil, chaosOdds(master.Uint64()))
		killAt := 1 + rng.Intn(master, 12)
		cycleCtx, cancel := context.WithCancel(ctx)
		killed := false
		fsys.OnCommit = func(_ string, n int) {
			if n >= killAt {
				killed = true
				cancel()
			}
		}
		ck, err := sim.LoadCheckpointFS(ckpt, fsys)
		if err != nil {
			// The chaos FS can fail even the load-time salvage re-flush;
			// the damaged original is already quarantined, so the next
			// cycle simply starts from an empty checkpoint. That is the
			// torture working, not the torture failing.
			logf(cfg.Log, "chaostest: cycle %d: checkpoint load under faults: %v", cycle+1, err)
			cancel()
			rep.Faults = addStats(rep.Faults, fsys.Stats())
			continue
		}
		if note := ck.LoadReport().Note(); note != "" {
			logf(cfg.Log, "chaostest: cycle %d: checkpoint: %s", cycle+1, note)
		}
		runner := sim.NewRunner()
		runner.Checkpoint = ck
		_, err = campaign.Run(cycleCtx, merged, campaign.Options{
			Workers: cfg.Workers,
			Runner:  runner,
			// Write faults surface as cell-level checkpoint errors; a
			// generous budget keeps the campaign fighting through them
			// until the kill lands.
			RetryBudget:  10 * len(merged.Cells),
			BreakerAfter: 6,
			RetryBackoff: 1,
			RetrySeed:    cfg.Seed,
		})
		cancel()
		// The cycle's own kill produces context.Canceled — expected. Only
		// the caller's context dying aborts the torture.
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		if killed {
			rep.Kills++
		}
		rep.Faults = addStats(rep.Faults, fsys.Stats())
		logf(cfg.Log, "chaostest: cycle %d: killAt=%d killed=%v faults=%d commits=%d err=%v",
			cycle+1, killAt, killed, fsys.Stats().Total(), fsys.Stats().Commits, err)

		if cfg.Corrupt {
			if n, err := flipByte(ckpt, master); err == nil && n {
				rep.Corruptions++
			}
		}
	}

	// Phase 3: resume on a clean filesystem and finish.
	ck, err := sim.LoadCheckpointFS(ckpt, nil)
	if err != nil {
		return rep, fmt.Errorf("chaostest: final load: %w", err)
	}
	if note := ck.LoadReport().Note(); note != "" {
		logf(cfg.Log, "chaostest: final load: %s", note)
	}
	runner := sim.NewRunner()
	runner.Checkpoint = ck
	final, err := runAndRender(ctx, merged, ev, names, runner, cfg.Workers)
	if err != nil {
		return rep, fmt.Errorf("chaostest: final run: %w", err)
	}

	quarantined, _ := filepath.Glob(ckpt + ".corrupt-*")
	rep.Quarantined = len(quarantined)
	rep.Identical = final == golden
	if !rep.Identical {
		return rep, fmt.Errorf("chaostest: final report differs from the undisturbed run (%d vs %d bytes): %s",
			len(final), len(golden), firstDiff(golden, final))
	}
	logf(cfg.Log, "chaostest: PASS: byte-identical after %d kills, %d faults, %d corruption(s), %d quarantine(s)",
		rep.Kills, rep.Faults.Total(), rep.Corruptions, rep.Quarantined)
	return rep, nil
}

// runAndRender executes the campaign and renders the named sections in
// order, the same post-execution rendering discipline cmd/experiments
// uses — which is what makes byte comparison meaningful.
func runAndRender(ctx context.Context, spec campaign.Spec, ev campaign.Eval, names []string, runner *sim.Runner, workers int) (string, error) {
	rs, err := campaign.Run(ctx, spec, campaign.Options{Workers: workers, Runner: runner})
	if err != nil {
		return "", err
	}
	if skipped := rs.Skipped(); len(skipped) > 0 {
		return "", fmt.Errorf("chaostest: %d cell(s) skipped on a clean filesystem: %v", len(skipped), skipped)
	}
	var buf bytes.Buffer
	rc := &report.Context{Eval: ev, Results: rs}
	for _, name := range names {
		def, _ := report.Section(name)
		if err := def.Render(&buf, rc); err != nil {
			return "", err
		}
		buf.WriteByte('\n')
	}
	return buf.String(), nil
}

// flipByte flips one seeded bit of one seeded byte of the file at path,
// reporting whether a flip happened (a missing or empty checkpoint is
// not an error — a cycle may die before its first commit).
func flipByte(path string, src *rng.XorShift64Star) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) == 0 {
		return false, err
	}
	pos := rng.Intn(src, len(raw))
	raw[pos] ^= byte(1) << uint(rng.Intn(src, 8))
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return false, err
	}
	return true, nil
}

// addStats accumulates chaos counters across cycles.
func addStats(a, b iofault.ChaosStats) iofault.ChaosStats {
	a.TornWrites += b.TornWrites
	a.ShortWrites += b.ShortWrites
	a.WriteErrs += b.WriteErrs
	a.NoSpaceErrs += b.NoSpaceErrs
	a.RenameFails += b.RenameFails
	a.FsyncLosses += b.FsyncLosses
	a.BitFlips += b.BitFlips
	a.Commits += b.Commits
	return a
}

// logf writes one narration line when a log sink is configured.
func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// firstDiff locates the first divergent line for a readable failure.
func firstDiff(a, b string) string {
	al, bl := splitLines(a), splitLines(b)
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("first divergence at line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return "outputs share a common prefix but differ in length"
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}

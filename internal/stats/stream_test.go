package stats

import (
	"math"
	"testing"

	"tivapromi/internal/rng"
)

// refMoments computes the batch statistics a streaming accumulator must
// reproduce.
func refMoments(samples []float64) (mean, variance, skew, kurt float64) {
	n := float64(len(samples))
	for _, x := range samples {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range samples {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	variance = m2 / (n - 1)
	skew = math.Sqrt(n) * m3 / math.Pow(m2, 1.5)
	kurt = n*m4/(m2*m2) - 3
	return
}

func sampleStream(seed uint64, n int) []float64 {
	src := rng.NewXorShift64Star(seed)
	out := make([]float64, n)
	for i := range out {
		// Skewed positive stream, latency-shaped: mostly small with a tail.
		u := float64(src.Uint64()%1000000) / 1000000
		out[i] = 10 + 100*u*u*u
	}
	return out
}

func TestMomentsMatchesBatch(t *testing.T) {
	samples := sampleStream(42, 10000)
	var m Moments
	for _, x := range samples {
		m.Add(x)
	}
	mean, variance, skew, kurt := refMoments(samples)
	if m.N() != uint64(len(samples)) {
		t.Fatalf("n = %d", m.N())
	}
	close := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	close("mean", m.Mean(), mean, 1e-9)
	close("variance", m.Variance(), variance, 1e-9)
	close("skewness", m.Skewness(), skew, 1e-6)
	close("kurtosis", m.Kurtosis(), kurt, 1e-6)
}

func TestMomentsMergeIsExact(t *testing.T) {
	samples := sampleStream(7, 5000)
	var whole Moments
	for _, x := range samples {
		whole.Add(x)
	}
	// Split unevenly across three workers, merge back.
	var a, b, c Moments
	for i, x := range samples {
		switch {
		case i < 123:
			a.Add(x)
		case i < 2000:
			b.Add(x)
		default:
			c.Add(x)
		}
	}
	var merged Moments
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(&c)
	if merged.N() != whole.N() {
		t.Fatalf("merged n = %d, want %d", merged.N(), whole.N())
	}
	close := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	close("mean", merged.Mean(), whole.Mean())
	close("variance", merged.Variance(), whole.Variance())
	close("skewness", merged.Skewness(), whole.Skewness())
	close("kurtosis", merged.Kurtosis(), whole.Kurtosis())
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("min/max = %v/%v, want %v/%v",
			merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestMomentsMergeEmptySides(t *testing.T) {
	var empty, m Moments
	m.Add(3)
	m.Add(5)
	m.Merge(&empty) // no-op
	if m.N() != 2 || m.Mean() != 4 {
		t.Fatalf("merge with empty changed state: n=%d mean=%v", m.N(), m.Mean())
	}
	var dst Moments
	dst.Merge(&m) // adopt
	if dst.N() != 2 || dst.Mean() != 4 {
		t.Fatalf("empty.Merge(m): n=%d mean=%v", dst.N(), dst.Mean())
	}
}

func TestP2QuantileConverges(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		samples := sampleStream(uint64(1000*q), 20000)
		est := NewP2Quantile(q)
		for _, x := range samples {
			est.Add(x)
		}
		exact := Percentile(samples, 100*q)
		// P² is an approximation; for these smooth streams it lands within
		// a few percent of the exact quantile.
		spread := samples[0]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range samples {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		spread = hi - lo
		if math.Abs(est.Value()-exact) > 0.05*spread {
			t.Errorf("q=%v: estimate %v, exact %v (spread %v)", q, est.Value(), exact, spread)
		}
	}
}

func TestP2QuantileSmallStreamsExact(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Fatalf("empty estimate = %v", est.Value())
	}
	est.Add(9)
	est.Add(1)
	est.Add(5)
	// Nearest-rank median of {1,5,9} is 5 (exact below five samples).
	if est.Value() != 5 {
		t.Fatalf("3-sample median = %v, want 5", est.Value())
	}
}

func TestP2QuantilePanicsOutOfRange(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func TestStreamSummary(t *testing.T) {
	s := NewStreamSummary()
	samples := sampleStream(3, 8000)
	for _, x := range samples {
		s.Add(x)
	}
	if s.Moments.N() != uint64(len(samples)) {
		t.Fatalf("n = %d", s.Moments.N())
	}
	if !(s.P50() < s.P99()) {
		t.Fatalf("p50 %v not below p99 %v", s.P50(), s.P99())
	}
	if s.P99() > s.Moments.Max() || s.P50() < s.Moments.Min() {
		t.Fatalf("quantiles outside [min, max]: p50=%v p99=%v min=%v max=%v",
			s.P50(), s.P99(), s.Moments.Min(), s.Moments.Max())
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordAgainstDirect(t *testing.T) {
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, s := range samples {
		w.Add(s)
	}
	if w.N() != len(samples) {
		t.Fatalf("N = %d, want %d", w.N(), len(samples))
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var all, wa, wb Welford
		// Clamp to a range where the m2 accumulator cannot overflow;
		// the merge identity is exact in real arithmetic regardless.
		for _, x := range a {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
			all.Add(x)
			wa.Add(x)
		}
		for _, x := range b {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true
			}
			all.Add(x)
			wb.Add(x)
		}
		wa.Merge(&wb)
		if wa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEq(wa.Mean(), all.Mean(), 1e-9*scale) &&
			almostEq(wa.Variance(), all.Variance(), 1e-6*math.Max(1, all.Variance()))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a, b Welford
	b.Add(1)
	b.Add(2)
	a.Merge(&b)
	if a.N() != 2 || !almostEq(a.Mean(), 1.5, 1e-12) {
		t.Fatalf("merge into empty: n=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 2 {
		t.Fatal("merging empty changed the accumulator")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("zero-denominator ratio not 0")
	}
	r.AddDen(1000)
	r.AddNum(3)
	if !almostEq(r.Percent(), 0.3, 1e-12) {
		t.Fatalf("percent = %v, want 0.3", r.Percent())
	}
	var o Ratio
	o.AddNum(7)
	o.AddDen(1000)
	r.Merge(o)
	if r.Num != 10 || r.Den != 2000 {
		t.Fatalf("merge: %+v", r)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(42) // overflow
	if h.N() != 12 {
		t.Fatalf("N = %d", h.N())
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if h.Min() != -1 || h.Max() != 42 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value extremely close to hi must not index out of range.
	h.Add(math.Nextafter(1, 0))
	if h.Bin(2) != 1 {
		t.Fatalf("top-edge sample not in last bin: %v", h.Bin(2))
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median estimate %v out of tolerance", med)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Fatal("clamped quantiles out of order")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 0, 10) },
		func() { NewHistogram(1, 0, 10) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram shape did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPercentileAndMedian(t *testing.T) {
	s := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if got := Median(s); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(s, 100); got != 9 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	s := []float64{3, 1, 2}
	Percentile(s, 50)
	if s[0] != 3 || s[1] != 1 || s[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(mean, 5, 1e-12) {
		t.Fatalf("mean = %v", mean)
	}
	if !almostEq(std, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("std = %v", std)
	}
}

// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming mean/variance (Welford), histograms,
// percentiles, and rate meters for activation-overhead accounting.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a streaming mean and variance without storing
// samples. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into w (Chan et al. parallel update).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// String formats as "mean ± stddev".
func (w *Welford) String() string {
	return fmt.Sprintf("%.6g ± %.3g", w.Mean(), w.StdDev())
}

// Ratio is an exact counter pair for rates such as
// "extra activations / total activations".
type Ratio struct {
	Num, Den uint64
}

// AddNum increments the numerator by n.
func (r *Ratio) AddNum(n uint64) { r.Num += n }

// AddDen increments the denominator by n.
func (r *Ratio) AddDen(n uint64) { r.Den += n }

// Value returns Num/Den, or 0 when the denominator is zero.
func (r Ratio) Value() float64 {
	if r.Den == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// Percent returns the ratio as a percentage.
func (r Ratio) Percent() float64 { return 100 * r.Value() }

// Merge adds another ratio's counters into r.
func (r *Ratio) Merge(o Ratio) {
	r.Num += o.Num
	r.Den += o.Den
}

// Histogram counts samples in uniform-width bins over [lo, hi); samples
// outside the range land in saturating under/overflow bins.
type Histogram struct {
	lo, hi    float64
	bins      []uint64
	under     uint64
	over      uint64
	n         uint64
	sum       float64
	min, max  float64
	haveFirst bool
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
// It panics on invalid parameters; the shape of a histogram is a static
// experiment parameter.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || !(lo < hi) {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, bins)}
}

// Add incorporates one sample.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	if !h.haveFirst || x < h.min {
		h.min = x
	}
	if !h.haveFirst || x > h.max {
		h.max = x
	}
	h.haveFirst = true
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
		if i == len(h.bins) { // guard against float rounding at the top edge
			i--
		}
		h.bins[i]++
	}
}

// N returns the total number of samples.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest sample seen (0 if empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest sample seen (0 if empty).
func (h *Histogram) Max() float64 { return h.max }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Quantile returns an approximate q-quantile (q in [0,1]) from the binned
// counts, using the bin midpoint. Under/overflow samples clamp to the range
// edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.n))
	cum := h.under
	if target < cum {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		cum += c
		if target < cum {
			return h.lo + (float64(i)+0.5)*width
		}
	}
	return h.hi
}

// Percentile computes an exact percentile of a sample slice (p in [0,100]),
// using nearest-rank. It copies and sorts the input.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Median returns the exact median of the samples (mean of the two central
// elements for even counts).
func Median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MeanStd returns the mean and sample standard deviation of the samples.
func MeanStd(samples []float64) (mean, std float64) {
	var w Welford
	for _, x := range samples {
		w.Add(x)
	}
	return w.Mean(), w.StdDev()
}

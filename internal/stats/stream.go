package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the fully-streaming accumulators: single-pass,
// constant-memory summaries for runs whose sample counts (per-activation
// latencies, per-interval loads over a billion-activation campaign) make
// sample retention the dominant heap cost. Welford/Ratio/Histogram were
// already streaming; Moments adds higher central moments and P2Quantile
// replaces "append to a slice, sort at the end" with the P² sketch —
// five markers per tracked quantile, whatever the stream length.

// Moments accumulates count, mean and the second to fourth central
// moments in one pass (Pébay's update), exposing variance, skewness and
// excess kurtosis in O(1) memory. The zero value is ready to use, and
// accumulators merge exactly — the property the sharded campaign driver
// needs to combine per-worker summaries into one as if a single pass had
// seen every sample.
type Moments struct {
	n          uint64
	mean       float64
	m2, m3, m4 float64
	min, max   float64
	haveFirst  bool
}

// Add incorporates one sample.
func (m *Moments) Add(x float64) {
	if !m.haveFirst || x < m.min {
		m.min = x
	}
	if !m.haveFirst || x > m.max {
		m.max = x
	}
	m.haveFirst = true
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	delta := x - m.mean
	dn := delta / n
	dn2 := dn * dn
	t1 := delta * dn * n1
	m.mean += dn
	m.m4 += t1*dn2*(n*n-3*n+3) + 6*dn2*m.m2 - 4*dn*m.m3
	m.m3 += t1*dn*(n-2) - 3*dn*m.m2
	m.m2 += t1
}

// Merge combines another accumulator into m (Pébay's pairwise formulas),
// exactly as if m had seen the other's samples.
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	na, nb := float64(m.n), float64(o.n)
	n := na + nb
	delta := o.mean - m.mean
	d2 := delta * delta
	mean := m.mean + delta*nb/n
	m2 := m.m2 + o.m2 + d2*na*nb/n
	m3 := m.m3 + o.m3 +
		delta*d2*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.m2-nb*m.m2)/n
	m4 := m.m4 + o.m4 +
		d2*d2*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*d2*(na*na*o.m2+nb*nb*m.m2)/(n*n) +
		4*delta*(na*o.m3-nb*m.m3)/n
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n += o.n
	m.mean, m.m2, m.m3, m.m4 = mean, m2, m3, m4
}

// N returns the number of samples seen.
func (m *Moments) N() uint64 { return m.n }

// Mean returns the sample mean (0 when empty).
func (m *Moments) Mean() float64 { return m.mean }

// Min returns the smallest sample seen (0 when empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest sample seen (0 when empty).
func (m *Moments) Max() float64 { return m.max }

// Variance returns the unbiased sample variance (0 below two samples).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Skewness returns the sample skewness (0 when undefined).
func (m *Moments) Skewness() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return math.Sqrt(n) * m.m3 / math.Pow(m.m2, 1.5)
}

// Kurtosis returns the excess kurtosis (0 when undefined).
func (m *Moments) Kurtosis() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	return n*m.m4/(m.m2*m.m2) - 3
}

// String formats as "mean ± stddev [min, max] (n)".
func (m *Moments) String() string {
	return fmt.Sprintf("%.6g ± %.3g [%.6g, %.6g] (n=%d)",
		m.Mean(), m.StdDev(), m.Min(), m.Max(), m.n)
}

// P2Quantile estimates one quantile of a stream with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers whose heights approach the
// q-quantile via piecewise-parabolic interpolation. Memory is constant
// and per-sample cost is O(1); the estimate is exact until the sixth
// sample and converges quickly for the smooth latency/load distributions
// the simulator produces. Create with NewP2Quantile.
type P2Quantile struct {
	q float64
	n uint64
	// Initialization buffer: the first five samples, sorted on promotion.
	init [5]float64
	// Marker state after initialization.
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired positions
	inc     [5]float64 // desired-position increments per sample
}

// NewP2Quantile creates an estimator for the q-quantile, q in (0, 1). It
// panics outside that range: the tracked quantile is a static experiment
// parameter, not data.
func NewP2Quantile(q float64) *P2Quantile {
	if !(q > 0 && q < 1) {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	p := &P2Quantile{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the tracked quantile parameter.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of samples seen.
func (p *P2Quantile) N() uint64 { return p.n }

// Add incorporates one sample.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		p.init[p.n] = x
		p.n++
		if p.n == 5 {
			s := p.init[:]
			sort.Float64s(s)
			copy(p.heights[:], s)
			p.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	p.n++

	// Find the cell k the sample falls into, updating extremes.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for marker i
// moved by s (±1).
func (p *P2Quantile) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback linear prediction when the parabola overshoots a
// neighboring marker.
func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. Below five samples it is
// the exact quantile of the buffered samples (nearest-rank), so small
// streams degrade gracefully instead of returning garbage.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		s := append([]float64(nil), p.init[:p.n]...)
		sort.Float64s(s)
		rank := int(math.Ceil(p.q * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		return s[rank-1]
	}
	return p.heights[2]
}

// StreamSummary bundles the constant-memory per-stream summary the scale
// harness reports: full moments plus the median and tail quantiles. The
// zero value is not usable; create with NewStreamSummary.
type StreamSummary struct {
	Moments Moments
	p50     *P2Quantile
	p99     *P2Quantile
}

// NewStreamSummary returns an empty summary tracking p50 and p99.
func NewStreamSummary() *StreamSummary {
	return &StreamSummary{p50: NewP2Quantile(0.5), p99: NewP2Quantile(0.99)}
}

// Add incorporates one sample into every tracked statistic.
func (s *StreamSummary) Add(x float64) {
	s.Moments.Add(x)
	s.p50.Add(x)
	s.p99.Add(x)
}

// P50 returns the running median estimate.
func (s *StreamSummary) P50() float64 { return s.p50.Value() }

// P99 returns the running 99th-percentile estimate.
func (s *StreamSummary) P99() float64 { return s.p99.Value() }

package core

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func testConfig() Config {
	// 16384 rows over 1024 intervals: 16 rows per interval, like DDR4.
	return DefaultConfig(16384, 1024)
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.RefInt = 1000 // not a power of two
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two RefInt accepted")
	}
	bad = testConfig()
	bad.HistoryEntries = 0
	if bad.Validate() == nil {
		t.Fatal("zero history entries accepted")
	}
	bad = testConfig()
	bad.RowsPerBank = 16385
	if bad.Validate() == nil {
		t.Fatal("rows not multiple of RefInt accepted")
	}
}

func TestPaperStorageNumbers(t *testing.T) {
	// Paper: 32-entry history table = 120 B per 1 GB bank
	// (17 row bits + 13 interval bits = 30 bits * 32 = 120 B).
	cfg := DefaultConfig(131072, 8192)
	if cfg.RowBits != 17 {
		t.Fatalf("RowBits = %d, want 17", cfg.RowBits)
	}
	if got := cfg.HistoryBytes(); got != 120 {
		t.Fatalf("HistoryBytes = %d, want 120", got)
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		LiPRoMi: "LiPRoMi", LoPRoMi: "LoPRoMi", LoLiPRoMi: "LoLiPRoMi",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%v != %s", v, want)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(LiPRoMi, 0, testConfig(), 1); err == nil {
		t.Fatal("zero banks accepted")
	}
	bad := testConfig()
	bad.RefInt = 3
	if _, err := New(LiPRoMi, 1, bad, 1); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestEffectiveWeightUsesNominalRefreshSlot(t *testing.T) {
	m := MustNew(LiPRoMi, 1, testConfig(), 1)
	// Row 160 with 16 rows/interval has fr = 10.
	if w := m.EffectiveWeight(0, 160, 10); w != 0 {
		t.Fatalf("weight at own refresh slot = %d, want 0", w)
	}
	if w := m.EffectiveWeight(0, 160, 110); w != 100 {
		t.Fatalf("weight 100 intervals later = %d", w)
	}
	// Wrap: interval 5 is before fr=10, so the refresh was last window.
	if w := m.EffectiveWeight(0, 160, 5); w != 5-10+1024 {
		t.Fatalf("wrapped weight = %d, want %d", w, 5-10+1024)
	}
}

func TestEffectiveWeightVariants(t *testing.T) {
	cfg := testConfig()
	li := MustNew(LiPRoMi, 1, cfg, 1)
	lo := MustNew(LoPRoMi, 1, cfg, 1)
	loli := MustNew(LoLiPRoMi, 1, cfg, 1)
	// Row 0, interval 20: linear weight 20, log weight 32.
	if w := li.EffectiveWeight(0, 0, 20); w != 20 {
		t.Fatalf("LiPRoMi weight = %d", w)
	}
	if w := lo.EffectiveWeight(0, 0, 20); w != 32 {
		t.Fatalf("LoPRoMi weight = %d", w)
	}
	// LoLiPRoMi without a table hit behaves logarithmically.
	if w := loli.EffectiveWeight(0, 0, 20); w != 32 {
		t.Fatalf("LoLiPRoMi weight (no hit) = %d", w)
	}
	// With a history entry at interval 18, LoLiPRoMi switches to linear.
	loli.Table(0).Record(0, 18)
	if w := loli.EffectiveWeight(0, 0, 20); w != 2 {
		t.Fatalf("LoLiPRoMi weight (hit) = %d, want 2", w)
	}
	// LoPRoMi with the same entry stays logarithmic but from the newer
	// reference: LogWeight(2) = 4.
	lo.Table(0).Record(0, 18)
	if w := lo.EffectiveWeight(0, 0, 20); w != 4 {
		t.Fatalf("LoPRoMi weight (hit) = %d, want 4", w)
	}
}

func TestTriggerRecordsHistoryAndEmitsActN(t *testing.T) {
	m := MustNew(LiPRoMi, 1, testConfig(), 7)
	// Hammer one row at a late interval (high weight) until it triggers.
	var cmds []mitigation.Command
	interval := 1000 // row 0 has fr=0, so weight 1000 of 1024
	for i := 0; i < 100000 && len(cmds) == 0; i++ {
		cmds = m.OnActivate(0, 0, interval, cmds)
	}
	if len(cmds) == 0 {
		t.Fatal("no trigger in 100k high-weight activations")
	}
	if cmds[0].Kind != mitigation.ActN || cmds[0].Row != 0 {
		t.Fatalf("unexpected command %+v", cmds[0])
	}
	if iv, ok := m.Table(0).Lookup(0); !ok || iv != interval {
		t.Fatalf("history table not updated: %d,%v", iv, ok)
	}
	// After the trigger the effective weight collapses to 0.
	if w := m.EffectiveWeight(0, 0, interval); w != 0 {
		t.Fatalf("post-trigger weight = %d, want 0", w)
	}
}

func TestZeroWeightNeverTriggers(t *testing.T) {
	m := MustNew(LiPRoMi, 1, testConfig(), 3)
	var cmds []mitigation.Command
	for i := 0; i < 200000; i++ {
		cmds = m.OnActivate(0, 0, 0, cmds) // fr(0)=0, weight 0
	}
	if len(cmds) != 0 {
		t.Fatalf("LiPRoMi triggered %d times at weight 0", len(cmds))
	}
}

func TestLoPRoMiTriggersAtZeroLinearWeight(t *testing.T) {
	// LogWeight(0) = 1 keeps a minimal escape probability — a structural
	// difference from LiPRoMi that closes the flooding window.
	m := MustNew(LoPRoMi, 1, testConfig(), 3)
	var cmds []mitigation.Command
	for i := 0; i < 40_000_000 && len(cmds) == 0; i++ {
		cmds = m.OnActivate(0, 0, 0, cmds)
	}
	if len(cmds) == 0 {
		t.Fatal("LoPRoMi never triggered at minimal weight (p = 2^-20)")
	}
}

func TestOnNewWindowClearsTables(t *testing.T) {
	m := MustNew(LoLiPRoMi, 2, testConfig(), 5)
	m.Table(0).Record(10, 5)
	m.Table(1).Record(20, 6)
	m.OnNewWindow()
	if m.Table(0).Occupancy() != 0 || m.Table(1).Occupancy() != 0 {
		t.Fatal("window change did not clear tables")
	}
}

func TestResetReproducesDecisions(t *testing.T) {
	run := func(m *TiVaPRoMi) []mitigation.Command {
		var cmds []mitigation.Command
		for i := 0; i < 50000; i++ {
			cmds = m.OnActivate(0, 512, 900, cmds)
		}
		return cmds
	}
	m := MustNew(LiPRoMi, 1, testConfig(), 42)
	a := run(m)
	m.Reset()
	b := run(m)
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d triggers", len(a), len(b))
	}
}

func TestPerBankIsolation(t *testing.T) {
	m := MustNew(LiPRoMi, 2, testConfig(), 9)
	var cmds []mitigation.Command
	for i := 0; i < 200000 && len(cmds) == 0; i++ {
		cmds = m.OnActivate(1, 64, 1000, cmds)
	}
	if len(cmds) == 0 {
		t.Fatal("setup: no trigger")
	}
	if m.Table(0).Occupancy() != 0 {
		t.Fatal("bank 0 table polluted by bank 1 activity")
	}
	if m.Table(1).Occupancy() != 1 {
		t.Fatal("bank 1 table missing its entry")
	}
}

func TestTriggerRateMatchesWeight(t *testing.T) {
	// At weight w the trigger rate must be ≈ w * Pbase. Use the paper's
	// structure: RefInt=1024 → Pbase = 2^-20.
	m := MustNew(LiPRoMi, 1, testConfig(), 11)
	const interval = 512 // row 0: weight 512, p = 512 * 2^-20 = 2^-11
	const n = 2 << 20
	trig := 0
	var cmds []mitigation.Command
	for i := 0; i < n; i++ {
		cmds = m.OnActivate(0, 0, interval, cmds[:0])
		if len(cmds) > 0 {
			trig++
			// Remove the history entry so the weight stays 512.
			m.Table(0).Clear()
		}
	}
	want := float64(n) / 2048
	if float64(trig) < want*0.8 || float64(trig) > want*1.2 {
		t.Fatalf("trigger count %d, want ≈%.0f", trig, want)
	}
}

func TestCycleModelMatchesTableII(t *testing.T) {
	// Table II: act cycles Li=37, Lo=37, LoLi=36; ref cycles 3 for all.
	cfg := DefaultConfig(131072, 8192) // 32-entry history table
	for _, tc := range []struct {
		v   Variant
		act int
		ref int
	}{
		{LiPRoMi, 37, 3},
		{LoPRoMi, 37, 3},
		{LoLiPRoMi, 36, 3},
	} {
		m := MustNew(tc.v, 1, cfg, 1)
		if got := m.ActCycles(); got != tc.act {
			t.Errorf("%v ActCycles = %d, want %d", tc.v, got, tc.act)
		}
		if got := m.RefCycles(); got != tc.ref {
			t.Errorf("%v RefCycles = %d, want %d", tc.v, got, tc.ref)
		}
	}
}

func TestCycleBudgetsRespected(t *testing.T) {
	// DDR4 budgets: 54 cycles per act, 420 per ref (Table I derivation).
	cfg := DefaultConfig(131072, 8192)
	for _, v := range []Variant{LiPRoMi, LoPRoMi, LoLiPRoMi} {
		m := MustNew(v, 1, cfg, 1)
		if m.ActCycles() > 54 {
			t.Errorf("%v act cycles %d exceed DDR4 budget 54", v, m.ActCycles())
		}
		if m.RefCycles() > 420 {
			t.Errorf("%v ref cycles %d exceed DDR4 budget 420", v, m.RefCycles())
		}
	}
}

func TestRegistryHasAllVariants(t *testing.T) {
	for _, name := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		f, err := mitigation.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m := f(mitigation.Target{Banks: 2, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1)
		if m.Name() != name {
			t.Errorf("factory for %s built %s", name, m.Name())
		}
	}
}

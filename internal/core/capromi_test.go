package core

import (
	"testing"

	"tivapromi/internal/mitigation"
)

func testCaConfig() CaConfig {
	return DefaultCaConfig(16384, 1024)
}

func TestCaConfigValidate(t *testing.T) {
	if err := testCaConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCaConfig()
	bad.CounterEntries = 0
	if bad.Validate() == nil {
		t.Fatal("zero counter entries accepted")
	}
	bad = testCaConfig()
	bad.LockThreshold = 0
	if bad.Validate() == nil {
		t.Fatal("zero lock threshold accepted")
	}
	bad = testCaConfig()
	bad.MaxActsPerInterval = 0
	if bad.Validate() == nil {
		t.Fatal("zero max acts accepted")
	}
}

func TestCaStorageAccounting(t *testing.T) {
	cfg := DefaultCaConfig(131072, 8192)
	// History table is the published 120 B; the total adds the 64-entry
	// counter table (row 17b + link 13b + count 8b + lock 1b).
	if cfg.HistoryBytes() != 120 {
		t.Fatalf("HistoryBytes = %d", cfg.HistoryBytes())
	}
	total := cfg.TotalBytes()
	if total <= 120 || total > 600 {
		t.Fatalf("TotalBytes = %d, implausible vs the paper's 374 B", total)
	}
}

func mustCa(t *testing.T, banks int, seed uint64) *CaPRoMi {
	t.Helper()
	c, err := NewCa(banks, testCaConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCaCountsActivations(t *testing.T) {
	c := mustCa(t, 1, 1)
	for i := 0; i < 5; i++ {
		c.OnActivate(0, 100, 10, nil)
	}
	c.OnActivate(0, 200, 10, nil)
	if got := c.CounterOccupancy(0); got != 2 {
		t.Fatalf("occupancy = %d, want 2", got)
	}
	if got := c.cnts[0][0].cnt; got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestCaLockBitSetAtThreshold(t *testing.T) {
	c := mustCa(t, 1, 1)
	for i := uint32(0); i < c.cfg.LockThreshold; i++ {
		c.OnActivate(0, 100, 10, nil)
	}
	if !c.cnts[0][0].locked {
		t.Fatal("entry not locked at threshold")
	}
}

func TestCaReplacementSkipsLocked(t *testing.T) {
	c := mustCa(t, 1, 1)
	// Lock entry for row 0.
	for i := uint32(0); i < c.cfg.LockThreshold; i++ {
		c.OnActivate(0, 0, 10, nil)
	}
	// Fill the rest of the table with singles.
	for r := 1; r < c.cfg.CounterEntries; r++ {
		c.OnActivate(0, r*10, 10, nil)
	}
	// Insert many more rows, forcing replacements.
	for r := 0; r < 500; r++ {
		c.OnActivate(0, 5000+r, 10, nil)
	}
	// The locked entry must have survived every replacement.
	found := false
	for _, e := range c.cnts[0] {
		if e.row == 0 && e.locked {
			found = true
		}
	}
	if !found {
		t.Fatal("locked entry was replaced")
	}
	if got := c.CounterOccupancy(0); got != c.cfg.CounterEntries {
		t.Fatalf("occupancy = %d, want full table %d", got, c.cfg.CounterEntries)
	}
}

func TestCaReplacementFailsWhenAllLocked(t *testing.T) {
	cfg := testCaConfig()
	cfg.CounterEntries = 4
	cfg.LockThreshold = 2
	c, err := NewCa(1, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		c.OnActivate(0, r, 10, nil)
		c.OnActivate(0, r, 10, nil) // second hit locks
	}
	c.OnActivate(0, 999, 10, nil) // nowhere to go
	if c.ReplaceFails != 1 {
		t.Fatalf("ReplaceFails = %d, want 1", c.ReplaceFails)
	}
	for _, e := range c.cnts[0] {
		if e.row == 999 {
			t.Fatal("insert succeeded despite all-locked table")
		}
	}
}

func TestCaActEmitsNothing(t *testing.T) {
	c := mustCa(t, 1, 1)
	var cmds []mitigation.Command
	for i := 0; i < 100000; i++ {
		cmds = c.OnActivate(0, 100, 512, cmds)
	}
	if len(cmds) != 0 {
		t.Fatal("CaPRoMi emitted commands during activations; decisions are collective at ref")
	}
}

func TestCaCollectiveDecisionAtRef(t *testing.T) {
	c := mustCa(t, 1, 7)
	// Row 0 (fr = 0) hammered hard; decide at a late interval where the
	// weight is maximal: p = cnt * LogWeight(1000) * 2^-20
	//                      = 160 * 1024 / 2^20 ≈ 0.156 per interval.
	triggers := 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 160; i++ {
			c.OnActivate(0, 0, 1000, nil)
		}
		cmds := c.OnRefreshInterval(1000, nil)
		triggers += len(cmds)
		for _, cmd := range cmds {
			if cmd.Kind != mitigation.ActN || cmd.Row != 0 {
				t.Fatalf("unexpected command %+v", cmd)
			}
		}
		// Counter table restarts each interval.
		if c.CounterOccupancy(0) != 0 {
			t.Fatal("counter table not cleared at interval end")
		}
		// Reset history so every round sees the full weight.
		c.History(0).Clear()
	}
	// Expected ≈ 200 * 0.156 ≈ 31; accept a generous band.
	if triggers < 10 || triggers > 70 {
		t.Fatalf("collective triggers = %d, want ≈31", triggers)
	}
}

func TestCaHistoryLinkLowersWeight(t *testing.T) {
	c := mustCa(t, 1, 3)
	// Pretend an extra activation for row 0 happened at interval 999.
	c.History(0).Record(0, 999)
	c.OnActivate(0, 0, 1000, nil)
	e := c.cnts[0][0]
	if e.hist != 999 {
		t.Fatalf("history link = %d, want 999", e.hist)
	}
	// The decision at interval 1000 uses weight LogWeight(1) = 2 instead
	// of LogWeight(1000) = 1024: with cnt=1 the probability is 2^-19, so
	// 1000 trials should essentially never trigger.
	triggers := 0
	for i := 0; i < 1000; i++ {
		c.cnts[0] = c.cnts[0][:0]
		c.OnActivate(0, 0, 1000, nil)
		triggers += len(c.OnRefreshInterval(1000, nil))
	}
	if triggers > 2 {
		t.Fatalf("linked-history weight did not suppress triggers: %d", triggers)
	}
}

func TestCaTriggerUpdatesHistory(t *testing.T) {
	c := mustCa(t, 1, 5)
	for {
		for i := 0; i < 160; i++ {
			c.OnActivate(0, 0, 1000, nil)
		}
		if cmds := c.OnRefreshInterval(1000, nil); len(cmds) > 0 {
			break
		}
	}
	if iv, ok := c.History(0).Lookup(0); !ok || iv != 1000 {
		t.Fatalf("history after trigger: %d,%v", iv, ok)
	}
}

func TestCaOnNewWindowClearsEverything(t *testing.T) {
	c := mustCa(t, 2, 1)
	c.OnActivate(0, 5, 10, nil)
	c.History(1).Record(9, 9)
	c.OnNewWindow()
	if c.CounterOccupancy(0) != 0 || c.History(1).Occupancy() != 0 {
		t.Fatal("window change left state behind")
	}
}

func TestCaCycleModelMatchesTableII(t *testing.T) {
	cfg := DefaultCaConfig(131072, 8192)
	c, err := NewCa(1, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ActCycles(); got != 50 {
		t.Errorf("ActCycles = %d, want 50 (Table II)", got)
	}
	if got := c.RefCycles(); got != 258 {
		t.Errorf("RefCycles = %d, want 258 (Table II)", got)
	}
	// And both fit the DDR4 budgets (54 / 420).
	if c.ActCycles() > 54 || c.RefCycles() > 420 {
		t.Error("CaPRoMi violates the DDR4 cycle budgets")
	}
}

func TestCaResetReproduces(t *testing.T) {
	run := func(c *CaPRoMi) int {
		trig := 0
		for round := 0; round < 50; round++ {
			for i := 0; i < 100; i++ {
				c.OnActivate(0, 0, 900, nil)
			}
			trig += len(c.OnRefreshInterval(900, nil))
		}
		return trig
	}
	c := mustCa(t, 1, 77)
	a := run(c)
	c.Reset()
	if b := run(c); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

//go:build !tivadebug

package core

import "testing"

// TestNegativeWeightIsZeroInRelease pins the release-build contract: a
// negative weight (an invariant violation Weight can never produce) maps
// deterministically to 0 — a probability that never triggers — instead of
// panicking on the per-activation hot path. The fail-fast behavior lives
// behind the `tivadebug` build tag (assert_debug_test.go).
func TestNegativeWeightIsZeroInRelease(t *testing.T) {
	for _, w := range []int{-1, -2, -1024} {
		if got := LogWeight(w); got != 0 {
			t.Errorf("LogWeight(%d) = %d, want 0 in release builds", w, got)
		}
		if got := QuadWeight(w, 1024); got != 0 {
			t.Errorf("QuadWeight(%d, 1024) = %d, want 0 in release builds", w, got)
		}
	}
	// Sanity: non-negative weights are unaffected by the assertion split.
	if LogWeight(0) != 1 || QuadWeight(0, 1024) != 1 {
		t.Fatal("zero weight no longer maps to 1")
	}
}

package core

import (
	"testing"
	"testing/quick"
)

func TestHistoryLookupMiss(t *testing.T) {
	h := NewHistoryTable(4)
	if _, ok := h.Lookup(5); ok {
		t.Fatal("empty table reported a hit")
	}
}

func TestHistoryRecordAndLookup(t *testing.T) {
	h := NewHistoryTable(4)
	h.Record(10, 100)
	iv, ok := h.Lookup(10)
	if !ok || iv != 100 {
		t.Fatalf("Lookup(10) = %d,%v", iv, ok)
	}
}

func TestHistoryUpdateInPlace(t *testing.T) {
	h := NewHistoryTable(4)
	h.Record(10, 100)
	h.Record(10, 200)
	if h.Occupancy() != 1 {
		t.Fatalf("occupancy = %d after duplicate record", h.Occupancy())
	}
	iv, _ := h.Lookup(10)
	if iv != 200 {
		t.Fatalf("interval = %d, want updated 200", iv)
	}
}

func TestHistoryFIFOReplacement(t *testing.T) {
	h := NewHistoryTable(3)
	h.Record(1, 10)
	h.Record(2, 20)
	h.Record(3, 30)
	h.Record(4, 40) // evicts 1 (oldest)
	if _, ok := h.Lookup(1); ok {
		t.Fatal("oldest entry not evicted")
	}
	for _, row := range []int{2, 3, 4} {
		if _, ok := h.Lookup(row); !ok {
			t.Fatalf("row %d missing", row)
		}
	}
	h.Record(5, 50) // evicts 2
	if _, ok := h.Lookup(2); ok {
		t.Fatal("FIFO order violated")
	}
}

func TestHistoryInPlaceUpdateDoesNotResetFIFOAge(t *testing.T) {
	h := NewHistoryTable(2)
	h.Record(1, 10)
	h.Record(2, 20)
	h.Record(1, 11) // update, not reinsertion
	h.Record(3, 30) // must evict 1 (slot-order FIFO, as in hardware)
	if _, ok := h.Lookup(1); ok {
		t.Fatal("in-place update changed replacement order")
	}
	if _, ok := h.Lookup(2); !ok {
		t.Fatal("entry 2 wrongly evicted")
	}
}

func TestHistoryClear(t *testing.T) {
	h := NewHistoryTable(4)
	h.Record(1, 1)
	h.Record(2, 2)
	h.Clear()
	if h.Occupancy() != 0 {
		t.Fatal("clear left valid entries")
	}
	if _, ok := h.Lookup(1); ok {
		t.Fatal("lookup hit after clear")
	}
	// Table is reusable after clear.
	h.Record(7, 70)
	if iv, ok := h.Lookup(7); !ok || iv != 70 {
		t.Fatal("table unusable after clear")
	}
}

func TestHistoryCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity table accepted")
		}
	}()
	NewHistoryTable(0)
}

func TestHistoryOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(rows []uint16) bool {
		h := NewHistoryTable(8)
		for i, r := range rows {
			h.Record(int(r), i)
			if h.Occupancy() > h.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryLastRecordAlwaysPresent(t *testing.T) {
	f := func(rows []uint16) bool {
		h := NewHistoryTable(4)
		for i, r := range rows {
			h.Record(int(r), i)
			if iv, ok := h.Lookup(int(r)); !ok || iv != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

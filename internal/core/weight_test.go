package core

import (
	"testing"
	"testing/quick"
)

func TestWeightExamples(t *testing.T) {
	const refInt = 8192
	cases := []struct {
		i, since, want int
	}{
		{0, 0, 0},
		{10, 3, 7},
		{3, 10, 3 - 10 + refInt}, // wrap: since belongs to the previous window
		{refInt - 1, 0, refInt - 1},
		{0, refInt - 1, 1},
	}
	for _, c := range cases {
		if got := Weight(c.i, c.since, refInt); got != c.want {
			t.Errorf("Weight(%d,%d) = %d, want %d", c.i, c.since, got, c.want)
		}
	}
}

func TestWeightBoundsProperty(t *testing.T) {
	// Eq. 1 always yields 0 <= w < RefInt for in-range inputs.
	f := func(a, b uint16) bool {
		const refInt = 1024
		i, since := int(a)%refInt, int(b)%refInt
		w := Weight(i, since, refInt)
		return w >= 0 && w < refInt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightZeroIffJustRefreshed(t *testing.T) {
	f := func(a uint16) bool {
		const refInt = 1024
		i := int(a) % refInt
		return Weight(i, i, refInt) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogWeightPaperExamples(t *testing.T) {
	// "for all values between 16 and 31, their weight will be constant 32"
	for w := 16; w <= 31; w++ {
		if got := LogWeight(w); got != 32 {
			t.Errorf("LogWeight(%d) = %d, want 32", w, got)
		}
	}
	cases := map[int]int{0: 1, 1: 2, 2: 4, 3: 4, 4: 8, 7: 8, 8: 16, 15: 16, 32: 64, 8191: 8192}
	for w, want := range cases {
		if got := LogWeight(w); got != want {
			t.Errorf("LogWeight(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestLogWeightProperties(t *testing.T) {
	f := func(a uint16) bool {
		w := int(a) % 8192
		lw := LogWeight(w)
		// Power of two, dominates the linear weight, and is at most
		// 2*(w+1).
		return lw > 0 && lw&(lw-1) == 0 && lw >= w && lw <= 2*(w+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogWeightMonotone(t *testing.T) {
	prev := 0
	for w := 0; w < 10000; w++ {
		lw := LogWeight(w)
		if lw < prev {
			t.Fatalf("LogWeight not monotone at %d: %d < %d", w, lw, prev)
		}
		prev = lw
	}
}

// Negative-weight behavior is build-tag dependent: see
// assert_release_test.go (release: deterministic 0) and
// assert_debug_test.go (tivadebug: panic).

func TestProbBits(t *testing.T) {
	// Paper: RefInt = 8192 gives Pbase = 2^-23.
	if got := ProbBits(8192); got != 23 {
		t.Fatalf("ProbBits(8192) = %d, want 23", got)
	}
	// Scaled: RefInt = 1024 gives Pbase = 2^-20, so RefInt*Pbase stays 2^-10.
	if got := ProbBits(1024); got != 20 {
		t.Fatalf("ProbBits(1024) = %d, want 20", got)
	}
}

func TestProbBitsInvariant(t *testing.T) {
	// RefInt * Pbase = 2^-10 for all powers of two.
	for refInt := 2; refInt <= 1<<20; refInt <<= 1 {
		bits := ProbBits(refInt)
		// refInt * 2^-bits == 2^-10 <=> log2(refInt) - bits == -10
		lg := 0
		for v := refInt; v > 1; v >>= 1 {
			lg++
		}
		if int(bits)-lg != 10 {
			t.Fatalf("RefInt %d: bits %d breaks RefInt*Pbase = 2^-10", refInt, bits)
		}
	}
}

func TestProbBitsPanicsOnNonPowerOfTwo(t *testing.T) {
	for _, v := range []int{0, -8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ProbBits(%d) did not panic", v)
				}
			}()
			ProbBits(v)
		}()
	}
}

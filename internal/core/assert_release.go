//go:build !tivadebug

package core

// assertNonNegativeWeight is a no-op in release builds: the weight
// functions sit on the per-activation hot path, and a negative weight is
// an internal invariant violation that Weight can never produce. Release
// builds define the behavior deterministically (negative weights map to
// 0, a probability that never triggers) instead of paying for a panic
// check per activation; `go test -tags tivadebug ./internal/core/...`
// turns the check back into a panic (see assert_debug.go).
func assertNonNegativeWeight(int) {}

package core

import (
	"fmt"

	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// Variant selects the time-varying weighting scheme.
type Variant int

const (
	// LiPRoMi uses the linear weight of Eq. 1 directly. Finest-grained,
	// but the slow weight ramp after a refresh leaves a window that a
	// flooding attacker can exploit (Section III-A).
	LiPRoMi Variant = iota
	// LoPRoMi uses the logarithmic weight of Eq. 2: weights ramp fast at
	// low values, closing the flooding window at the cost of more extra
	// activations.
	LoPRoMi
	// LoLiPRoMi uses the linear weight when the row is in the history
	// table (an extra activation already happened, so urgency is lower)
	// and the logarithmic weight otherwise.
	LoLiPRoMi
	// QuaPRoMi is an EXTENSION beyond the paper (its Section III invites
	// "other weighting methods"): quadratic weighting w²/RefInt, the
	// mirror image of Eq. 2 — probabilities stay minimal for longer and
	// ramp late. It trades even fewer extra activations for a wider
	// flooding window than LiPRoMi; the experiments quantify both.
	QuaPRoMi
)

// String implements fmt.Stringer using the paper's names.
func (v Variant) String() string {
	switch v {
	case LiPRoMi:
		return "LiPRoMi"
	case LoPRoMi:
		return "LoPRoMi"
	case LoLiPRoMi:
		return "LoLiPRoMi"
	case QuaPRoMi:
		return "QuaPRoMi"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config parameterizes the purely probabilistic TiVaPRoMi variants.
type Config struct {
	// RowsPerBank and RefInt describe the device; RowsPerInterval is
	// derived (RowsPerBank / RefInt).
	RowsPerBank int
	RefInt      int
	// HistoryEntries is the per-bank history-table size (32 in the paper).
	HistoryEntries int
	// RowBits is the row-address width for storage accounting (17 for
	// 1 GB banks of 8 KB rows).
	RowBits int
	// ProbBitsDelta shifts the comparator resolution for ablation
	// studies: the effective Pbase becomes 2^-(ProbBits(RefInt)+delta),
	// scaling every probability by 2^-delta. 0 is the paper's choice
	// (RefInt * Pbase ≈ 0.001).
	ProbBitsDelta int
}

// DefaultConfig returns the paper's table sizing for a device geometry.
func DefaultConfig(rowsPerBank, refInt int) Config {
	return Config{
		RowsPerBank:    rowsPerBank,
		RefInt:         refInt,
		HistoryEntries: 32,
		RowBits:        bitsForRows(rowsPerBank),
	}
}

func bitsForRows(rows int) int {
	n := 0
	for v := rows - 1; v > 0; v >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	switch {
	case c.RowsPerBank <= 1:
		return fmt.Errorf("core: RowsPerBank = %d", c.RowsPerBank)
	case c.RefInt <= 0 || c.RefInt&(c.RefInt-1) != 0:
		return fmt.Errorf("core: RefInt = %d must be a positive power of two", c.RefInt)
	case c.RowsPerBank%c.RefInt != 0:
		return fmt.Errorf("core: RowsPerBank (%d) not a multiple of RefInt (%d)", c.RowsPerBank, c.RefInt)
	case c.HistoryEntries <= 0:
		return fmt.Errorf("core: HistoryEntries = %d", c.HistoryEntries)
	}
	return nil
}

// intervalBits returns the width of a stored refresh-interval timestamp.
func (c Config) intervalBits() int {
	n := 0
	for v := c.RefInt - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// HistoryBytes returns the history-table storage per bank: entries *
// (row address + interval timestamp) bits. For the paper's parameters
// (32 entries, 17 row bits, 13 interval bits) this is the published 120 B.
func (c Config) HistoryBytes() int {
	return c.HistoryEntries * (c.RowBits + c.intervalBits()) / 8
}

// TiVaPRoMi is one of the three purely probabilistic variants (LiPRoMi,
// LoPRoMi, LoLiPRoMi) over all banks. Create instances with New.
type TiVaPRoMi struct {
	cfg     Config
	variant Variant
	// tables holds one history table per bank, stored flat (by value) so
	// the per-activation bank dispatch is one index into a contiguous
	// slice instead of a pointer chase.
	tables []HistoryTable
	// lutHit/lutMiss are the precomputed fixed-point Bernoulli trigger
	// thresholds for every possible raw weight w in [0, RefInt): the
	// effective weight that enters the comparator when the activated row
	// is in the history table (lutHit) or not (lutMiss). They fold the
	// per-variant Weight→LogWeight/QuadWeight mapping out of the
	// per-activation path; the hardware analogue is the modified priority
	// encoder of Eq. 2, which is likewise a pure combinational function of
	// the interval difference.
	lutHit  []int32
	lutMiss []int32
	bern    *rng.Bernoulli
	src     *rng.LFSR32
	// override, when non-nil, replaces the built-in LFSR on the Bernoulli
	// decision path (fault-injection studies; see
	// mitigation.RandSettable).
	override rng.Source
	seed     uint64
	shift    uint // log2(RowsPerInterval): fr = row >> shift
}

// New builds a TiVaPRoMi instance for the given bank count. It returns an
// error for invalid configurations.
func New(variant Variant, banks int, cfg Config, seed uint64) (*TiVaPRoMi, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if banks <= 0 {
		return nil, fmt.Errorf("core: banks = %d", banks)
	}
	rpi := cfg.RowsPerBank / cfg.RefInt
	if rpi&(rpi-1) != 0 {
		return nil, fmt.Errorf("core: RowsPerInterval = %d must be a power of two", rpi)
	}
	shift := uint(0)
	for v := rpi; v > 1; v >>= 1 {
		shift++
	}
	t := &TiVaPRoMi{
		cfg:     cfg,
		variant: variant,
		tables:  make([]HistoryTable, banks),
		seed:    seed,
		shift:   shift,
	}
	for b := range t.tables {
		t.tables[b] = *NewHistoryTable(cfg.HistoryEntries)
	}
	t.lutHit, t.lutMiss = buildWeightLUTs(variant, cfg.RefInt)
	t.Reset()
	return t, nil
}

// buildWeightLUTs precomputes the per-variant effective-weight tables for
// every raw weight in [0, refInt). hit applies when the activated row is
// in the history table, miss when it is not; only LoLiPRoMi distinguishes
// the two.
func buildWeightLUTs(variant Variant, refInt int) (hit, miss []int32) {
	hit = make([]int32, refInt)
	miss = make([]int32, refInt)
	for w := 0; w < refInt; w++ {
		hit[w] = int32(variantWeight(variant, w, true, refInt))
		miss[w] = int32(variantWeight(variant, w, false, refInt))
	}
	return hit, miss
}

// variantWeight is the reference (unmemoized) per-variant weighting; the
// LUTs are built from it and the out-of-range fallback uses it directly.
func variantWeight(variant Variant, w int, inTable bool, refInt int) int {
	switch variant {
	case LiPRoMi:
		return w
	case LoPRoMi:
		return LogWeight(w)
	case LoLiPRoMi:
		if inTable {
			return w
		}
		return LogWeight(w)
	case QuaPRoMi:
		return QuadWeight(w, refInt)
	default:
		panic("core: unknown variant")
	}
}

// MustNew is New for static configurations; it panics on error.
func MustNew(variant Variant, banks int, cfg Config, seed uint64) *TiVaPRoMi {
	t, err := New(variant, banks, cfg, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// LiFactory, LoFactory and LoLiFactory adapt the three variants to the
// mitigation registry.
func LiFactory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return MustNew(LiPRoMi, t.Banks, DefaultConfig(t.RowsPerBank, t.RefInt), seed)
}

// LoFactory builds a LoPRoMi instance; see LiFactory.
func LoFactory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return MustNew(LoPRoMi, t.Banks, DefaultConfig(t.RowsPerBank, t.RefInt), seed)
}

// LoLiFactory builds a LoLiPRoMi instance; see LiFactory.
func LoLiFactory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return MustNew(LoLiPRoMi, t.Banks, DefaultConfig(t.RowsPerBank, t.RefInt), seed)
}

// Name implements mitigation.Mitigator.
func (t *TiVaPRoMi) Name() string { return t.variant.String() }

// Variant returns the weighting scheme.
func (t *TiVaPRoMi) Variant() Variant { return t.variant }

// Config returns the configuration.
func (t *TiVaPRoMi) Config() Config { return t.cfg }

// EffectiveWeight computes the weight that enters the probability for an
// activation of row in the given in-window interval, implementing the
// per-variant logic. It is exported for white-box tests and the
// vulnerability analyzer.
func (t *TiVaPRoMi) EffectiveWeight(bank, row, interval int) int {
	since := int(row) >> t.shift // fr, the nominal refresh slot
	inTable := false
	if iv, ok := t.tables[bank].Lookup(row); ok {
		since = iv
		inTable = true
	}
	return t.effectiveWeight(interval, since, inTable)
}

// effectiveWeight resolves the trigger threshold for a raw interval
// distance through the precomputed LUTs, falling back to the reference
// computation for out-of-range weights (unreachable from valid state, but
// fault injection corrupts table timestamps and the fallback keeps the
// contract total).
func (t *TiVaPRoMi) effectiveWeight(interval, since int, inTable bool) int {
	w := Weight(interval, since, t.cfg.RefInt)
	lut := t.lutMiss
	if inTable {
		lut = t.lutHit
	}
	if uint(w) < uint(len(lut)) {
		return int(lut[w])
	}
	return variantWeight(t.variant, w, inTable, t.cfg.RefInt)
}

// OnActivate implements mitigation.Mitigator: Fig. 2's FSM loop — search
// the history table, compute the weight, decide probabilistically, and on
// a positive decision emit act_n and update the table. The path is
// allocation-free: the table search is a flat scan, the weight is a LUT
// load, and the Bernoulli draw jumps the LFSR 32 steps per word.
func (t *TiVaPRoMi) OnActivate(bank, row, interval int, cmds []mitigation.Command) []mitigation.Command {
	tb := &t.tables[bank]
	since, inTable := tb.Lookup(row)
	if !inTable {
		since = row >> t.shift
	}
	w := t.effectiveWeight(interval, since, inTable)
	if !t.bern.Trigger(uint64(w)) {
		return cmds
	}
	tb.Record(row, interval)
	return append(cmds, mitigation.Command{Kind: mitigation.ActN, Bank: bank, Row: row})
}

// OnRefreshInterval implements mitigation.Mitigator: the Fig. 2 FSM only
// updates its refresh-interval register on ref, so nothing is emitted.
func (t *TiVaPRoMi) OnRefreshInterval(_ int, cmds []mitigation.Command) []mitigation.Command {
	return cmds
}

// OnNewWindow implements mitigation.Mitigator: the history table is
// cleared when a new refresh window starts.
func (t *TiVaPRoMi) OnNewWindow() {
	for b := range t.tables {
		t.tables[b].Clear()
	}
}

// Reset implements mitigation.Mitigator. An installed RNG override
// survives the reset (hardware RNG faults do not heal on state reset) but
// is reseeded so replays stay deterministic.
func (t *TiVaPRoMi) Reset() {
	// Power-on reset, not the window clear: fault injection can expose
	// row SRAM left over from the previous run (see HistoryTable.Reset).
	for b := range t.tables {
		t.tables[b].Reset()
	}
	t.src = rng.NewLFSR32(t.seed ^ 0x7177a)
	if t.override != nil {
		t.override.Seed(t.seed ^ 0x7177a)
	}
	t.rebuildBernoulli()
}

// rebuildBernoulli rewires the comparator onto the active entropy path.
func (t *TiVaPRoMi) rebuildBernoulli() {
	src := rng.Source(t.src)
	if t.override != nil {
		src = t.override
	}
	bits := int(ProbBits(t.cfg.RefInt)) + t.cfg.ProbBitsDelta
	if bits < 1 {
		bits = 1
	}
	t.bern = rng.NewBernoulli(src, uint(bits))
}

// SetRandSource implements mitigation.RandSettable: it reroutes the
// Bernoulli decision path onto src (nil restores the built-in LFSR)
// without touching table state — the fault arrives mid-run.
func (t *TiVaPRoMi) SetRandSource(src rng.Source) {
	t.override = src
	t.rebuildBernoulli()
}

// InjectStateFault implements mitigation.StateInjectable: one bit flip in
// a randomly chosen bank's history table (valid bit, row address or
// interval timestamp), modeling an SRAM single-event upset.
func (t *TiVaPRoMi) InjectStateFault(src rng.Source) bool {
	bank := rng.Intn(src, len(t.tables))
	return t.tables[bank].InjectBitFlip(src, t.cfg.RowBits, t.cfg.intervalBits())
}

// TableBytesPerBank implements mitigation.Mitigator.
func (t *TiVaPRoMi) TableBytesPerBank() int { return t.cfg.HistoryBytes() }

// Table exposes a bank's history table for white-box tests.
func (t *TiVaPRoMi) Table(bank int) *HistoryTable { return &t.tables[bank] }

// EscalatesUnderAttack implements mitigation.Escalation: the time-varying
// weight grows while an attack runs, raising the protection probability.
func (t *TiVaPRoMi) EscalatesUnderAttack() bool { return true }

// ActCycles implements mitigation.CycleModel; the values reproduce
// Table II and are derived from the FSM structure in internal/fsm (the
// fsm package's tests assert the correspondence).
func (t *TiVaPRoMi) ActCycles() int {
	switch t.variant {
	case LiPRoMi, LoPRoMi:
		return t.cfg.HistoryEntries + 5
	case LoLiPRoMi:
		return t.cfg.HistoryEntries + 4
	case QuaPRoMi:
		// The squaring multiplier adds a pipeline cycle to the weight
		// calculation.
		return t.cfg.HistoryEntries + 6
	default:
		panic("core: unknown variant")
	}
}

// RefCycles implements mitigation.CycleModel: update the interval
// register, detect window wrap, possibly reset the table (valid bits clear
// in one cycle) — 3 cycles for all Fig. 2 variants.
func (t *TiVaPRoMi) RefCycles() int { return 3 }

// QuaFactory builds the QuaPRoMi extension variant; see LiFactory.
func QuaFactory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	return MustNew(QuaPRoMi, t.Banks, DefaultConfig(t.RowsPerBank, t.RefInt), seed)
}

func init() {
	mitigation.Register("LiPRoMi", LiFactory)
	mitigation.Register("LoPRoMi", LoFactory)
	mitigation.Register("LoLiPRoMi", LoLiFactory)
	mitigation.Register("QuaPRoMi", QuaFactory)
}

package core

import (
	"testing"

	"tivapromi/internal/mitigation/mtest"
)

func TestLiPRoMiContract(t *testing.T)   { mtest.RunContract(t, LiFactory) }
func TestLoPRoMiContract(t *testing.T)   { mtest.RunContract(t, LoFactory) }
func TestLoLiPRoMiContract(t *testing.T) { mtest.RunContract(t, LoLiFactory) }
func TestCaPRoMiContract(t *testing.T)   { mtest.RunContract(t, CaFactory) }
func TestQuaPRoMiContract(t *testing.T)  { mtest.RunContract(t, QuaFactory) }

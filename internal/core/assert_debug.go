//go:build tivadebug

package core

import "fmt"

// assertNonNegativeWeight panics on negative weights under the
// `tivadebug` build tag, restoring the seed implementation's fail-fast
// behavior for invariant-checking test runs (`make test-debugasserts`).
// Release builds compile this to a no-op — see assert_release.go.
func assertNonNegativeWeight(w int) {
	if w < 0 {
		panic(fmt.Sprintf("core: negative weight %d", w))
	}
}

package core

import (
	"fmt"

	"tivapromi/internal/mitigation"
	"tivapromi/internal/rng"
)

// CaConfig parameterizes CaPRoMi, the counter-assisted variant.
type CaConfig struct {
	Config
	// CounterEntries is the per-bank counter-table size. The paper
	// optimizes between the DDR4 per-interval activation ceiling (165)
	// and the traces' average (≈40) and lands on 64.
	CounterEntries int
	// LockThreshold is the activation count at which an entry's lock bit
	// is set, protecting it from random replacement.
	LockThreshold uint32
	// MaxActsPerInterval sizes the counter field (165 for DDR4).
	MaxActsPerInterval int
}

// DefaultCaConfig returns the paper's CaPRoMi sizing.
func DefaultCaConfig(rowsPerBank, refInt int) CaConfig {
	return CaConfig{
		Config:             DefaultConfig(rowsPerBank, refInt),
		CounterEntries:     64,
		LockThreshold:      32,
		MaxActsPerInterval: 165,
	}
}

// Validate reports configuration problems.
func (c CaConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	switch {
	case c.CounterEntries <= 0:
		return fmt.Errorf("core: CounterEntries = %d", c.CounterEntries)
	case c.LockThreshold == 0:
		return fmt.Errorf("core: LockThreshold must be positive")
	case c.MaxActsPerInterval <= 0:
		return fmt.Errorf("core: MaxActsPerInterval = %d", c.MaxActsPerInterval)
	}
	return nil
}

// CounterBytes returns the counter-table storage per bank: entries *
// (row address + history link + counter + lock bit).
func (c CaConfig) CounterBytes() int {
	cntBits := 0
	for v := c.MaxActsPerInterval; v > 0; v >>= 1 {
		cntBits++
	}
	return c.CounterEntries * (c.RowBits + c.intervalBits() + cntBits + 1) / 8
}

// TotalBytes returns history plus counter table storage per bank (the
// paper reports 374 B for its parameters; the exact value depends on the
// assumed field packing — see EXPERIMENTS.md).
func (c CaConfig) TotalBytes() int { return c.HistoryBytes() + c.CounterBytes() }

// caEntry is one counter-table row.
type caEntry struct {
	row    int32
	cnt    uint32
	hist   int32 // linked history-table interval, -1 when absent
	locked bool
}

// CaPRoMi is the counter-assisted variant (Fig. 3 FSM): activations only
// update a per-interval counter table; the probabilistic decisions for all
// tracked rows are made collectively when the refresh command arrives,
// with p_r = cnt_r * w_log_r * Pbase.
type CaPRoMi struct {
	cfg CaConfig
	// hist holds one history table per bank, stored flat (by value) like
	// TiVaPRoMi's.
	hist []HistoryTable
	cnts [][]caEntry
	// loglut precomputes LogWeight for every raw weight in [0, RefInt),
	// taking Eq. 2 off the per-entry collective-decision loop.
	loglut []int32
	bern   *rng.Bernoulli
	src    *rng.LFSR32
	// override, when non-nil, replaces the built-in LFSR on the Bernoulli
	// decision path (fault-injection studies).
	override rng.Source
	repler   *rng.XorShift64Star // replacement-victim chooser
	seed     uint64
	shift    uint
	// ReplaceFails counts failed probabilistic replacements (all entries
	// locked), the Fig. 3 "fail" edge.
	ReplaceFails uint64
}

// NewCa builds a CaPRoMi instance for the given bank count.
func NewCa(banks int, cfg CaConfig, seed uint64) (*CaPRoMi, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if banks <= 0 {
		return nil, fmt.Errorf("core: banks = %d", banks)
	}
	rpi := cfg.RowsPerBank / cfg.RefInt
	shift := uint(0)
	for v := rpi; v > 1; v >>= 1 {
		shift++
	}
	c := &CaPRoMi{
		cfg:    cfg,
		hist:   make([]HistoryTable, banks),
		cnts:   make([][]caEntry, banks),
		loglut: make([]int32, cfg.RefInt),
		seed:   seed,
		shift:  shift,
	}
	for b := range c.hist {
		c.hist[b] = *NewHistoryTable(cfg.HistoryEntries)
		c.cnts[b] = make([]caEntry, 0, cfg.CounterEntries)
	}
	for w := 0; w < cfg.RefInt; w++ {
		c.loglut[w] = int32(LogWeight(w))
	}
	c.Reset()
	return c, nil
}

// MustNewCa is NewCa for configurations already validated by the caller;
// it panics on error (an invariant violation in a leaf package).
func MustNewCa(banks int, cfg CaConfig, seed uint64) *CaPRoMi {
	c, err := NewCa(banks, cfg, seed)
	if err != nil {
		panic(err)
	}
	return c
}

// CaFactory adapts NewCa to the mitigation registry.
func CaFactory(t mitigation.Target, seed uint64) mitigation.Mitigator {
	c, err := NewCa(t.Banks, DefaultCaConfig(t.RowsPerBank, t.RefInt), seed)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements mitigation.Mitigator.
func (c *CaPRoMi) Name() string { return "CaPRoMi" }

// Config returns the configuration.
func (c *CaPRoMi) Config() CaConfig { return c.cfg }

// OnActivate implements mitigation.Mitigator: the Fig. 3 act path —
// search/increase the counter table, insert on miss (with the history
// table searched in parallel to link the stored trigger interval), and on
// a full table randomly replace an unlocked entry.
func (c *CaPRoMi) OnActivate(bank, row, _ int, cmds []mitigation.Command) []mitigation.Command {
	tbl := c.cnts[bank]
	r := int32(row)
	for i := range tbl {
		if tbl[i].row == r {
			tbl[i].cnt++
			if tbl[i].cnt >= c.cfg.LockThreshold {
				tbl[i].locked = true
			}
			return cmds
		}
	}
	// Miss: build the new entry, linking the history table if it knows r.
	e := caEntry{row: r, cnt: 1, hist: -1}
	if iv, ok := c.hist[bank].Lookup(row); ok {
		e.hist = int32(iv)
	}
	if len(tbl) < c.cfg.CounterEntries {
		c.cnts[bank] = append(tbl, e)
		return cmds
	}
	// Probabilistic replacement of one unlocked entry (Fig. 3: full →
	// replace, which can fail when the lock bits prevent it).
	victim := rng.Intn(c.repler, len(tbl))
	for tries := 0; tries < len(tbl); tries++ {
		if !tbl[victim].locked {
			tbl[victim] = e
			return cmds
		}
		victim = (victim + 1) % len(tbl)
	}
	c.ReplaceFails++
	return cmds
}

// OnRefreshInterval implements mitigation.Mitigator: the Fig. 3 ref path.
// Every counter-table entry gets a collective decision with probability
// cnt * w_log * Pbase; positive decisions update the history table and
// issue act_n for the entry's neighbors (the paper issues them during the
// next interval; the aggregate effect is identical). The counter table
// then restarts for the next interval.
func (c *CaPRoMi) OnRefreshInterval(interval int, cmds []mitigation.Command) []mitigation.Command {
	for b := range c.cnts {
		for i := range c.cnts[b] {
			e := &c.cnts[b][i]
			since := int(e.row) >> c.shift
			if e.hist >= 0 {
				since = int(e.hist)
			}
			w := Weight(interval, since, c.cfg.RefInt)
			var lw uint64
			if uint(w) < uint(len(c.loglut)) {
				lw = uint64(c.loglut[w])
			} else {
				// Unreachable from valid state; fault injection can plant
				// out-of-range history links.
				lw = uint64(LogWeight(w))
			}
			if c.bern.Trigger(uint64(e.cnt) * lw) {
				c.hist[b].Record(int(e.row), interval)
				cmds = append(cmds, mitigation.Command{
					Kind: mitigation.ActN, Bank: b, Row: int(e.row),
				})
			}
		}
		c.cnts[b] = c.cnts[b][:0]
	}
	return cmds
}

// OnNewWindow implements mitigation.Mitigator.
func (c *CaPRoMi) OnNewWindow() {
	for b := range c.hist {
		c.hist[b].Clear()
		c.cnts[b] = c.cnts[b][:0]
	}
}

// Reset implements mitigation.Mitigator. An installed RNG override
// survives the reset but is reseeded so replays stay deterministic.
func (c *CaPRoMi) Reset() {
	c.OnNewWindow()
	c.ReplaceFails = 0
	c.src = rng.NewLFSR32(c.seed ^ 0xca9a0)
	if c.override != nil {
		c.override.Seed(c.seed ^ 0xca9a0)
	}
	c.rebuildBernoulli()
	c.repler = rng.NewXorShift64Star(c.seed ^ 0x4e91ace)
}

// rebuildBernoulli rewires the comparator onto the active entropy path.
func (c *CaPRoMi) rebuildBernoulli() {
	src := rng.Source(c.src)
	if c.override != nil {
		src = c.override
	}
	bits := int(ProbBits(c.cfg.RefInt)) + c.cfg.ProbBitsDelta
	if bits < 1 {
		bits = 1
	}
	c.bern = rng.NewBernoulli(src, uint(bits))
}

// SetRandSource implements mitigation.RandSettable: it reroutes the
// collective-decision Bernoulli path onto src (nil restores the built-in
// LFSR). The replacement-victim chooser keeps its own generator — the
// modeled fault is in the decision LFSR, the paper's security-critical
// entropy.
func (c *CaPRoMi) SetRandSource(src rng.Source) {
	c.override = src
	c.rebuildBernoulli()
}

// InjectStateFault implements mitigation.StateInjectable: one bit flip in
// a randomly chosen bank, hitting the counter table when it has live
// entries (row address, count, history link or lock bit) and the history
// table otherwise. Flipped row addresses are wrapped into the bank, as
// the row decoder of a real device would.
func (c *CaPRoMi) InjectStateFault(src rng.Source) bool {
	bank := rng.Intn(src, len(c.cnts))
	tbl := c.cnts[bank]
	if len(tbl) == 0 || rng.Intn(src, 2) == 0 {
		return c.hist[bank].InjectBitFlip(src, c.cfg.RowBits, c.cfg.intervalBits())
	}
	e := &tbl[rng.Intn(src, len(tbl))]
	switch rng.Intn(src, 4) {
	case 0:
		e.row ^= 1 << rng.Intn(src, max(c.cfg.RowBits, 1))
		if int(e.row) >= c.cfg.RowsPerBank {
			e.row = int32(int(e.row) % c.cfg.RowsPerBank)
		}
	case 1:
		cntBits := 1
		for v := c.cfg.MaxActsPerInterval; v > 0; v >>= 1 {
			cntBits++
		}
		e.cnt ^= 1 << rng.Intn(src, cntBits)
	case 2:
		if e.hist < 0 {
			e.hist = int32(rng.Intn(src, c.cfg.RefInt))
		} else {
			e.hist ^= 1 << rng.Intn(src, max(c.cfg.intervalBits(), 1))
		}
	default:
		e.locked = !e.locked
	}
	return true
}

// TableBytesPerBank implements mitigation.Mitigator.
func (c *CaPRoMi) TableBytesPerBank() int { return c.cfg.TotalBytes() }

// History exposes a bank's history table for white-box tests.
func (c *CaPRoMi) History(bank int) *HistoryTable { return &c.hist[bank] }

// CounterOccupancy returns the live counter-table entries of a bank.
func (c *CaPRoMi) CounterOccupancy(bank int) int { return len(c.cnts[bank]) }

// EscalatesUnderAttack implements mitigation.Escalation: both the
// per-interval activation count and the time-varying weight grow while an
// attack runs.
func (c *CaPRoMi) EscalatesUnderAttack() bool { return true }

// ActCycles implements mitigation.CycleModel: the counter table is
// searched two entries per cycle (32 cycles for 64 entries) with the
// history-table search overlapped, plus insert/replace resolution —
// 50 cycles, matching Table II.
func (c *CaPRoMi) ActCycles() int { return c.cfg.CounterEntries/2 + 18 }

// RefCycles implements mitigation.CycleModel: the collective decision
// visits each counter entry (weight, multiply, compare, update — 4 cycles
// per entry) plus 2 cycles of interval bookkeeping — 258 for 64 entries,
// matching Table II.
func (c *CaPRoMi) RefCycles() int { return 4*c.cfg.CounterEntries + 2 }

func init() { mitigation.Register("CaPRoMi", CaFactory) }

//go:build tivadebug

package core

import "testing"

// TestNegativeWeightPanicsUnderDebugTag pins the debug-build contract:
// with `-tags tivadebug` the weight functions fail fast on the invariant
// violation, exactly as the seed implementation did unconditionally.
// Release builds map negative weights to 0 (assert_release_test.go).
func TestNegativeWeightPanicsUnderDebugTag(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic under tivadebug", name)
			}
		}()
		fn()
	}
	mustPanic("LogWeight(-1)", func() { LogWeight(-1) })
	mustPanic("QuadWeight(-1, 1024)", func() { QuadWeight(-1, 1024) })
}

package core

import "tivapromi/internal/rng"

// HistoryTable is the paper's small per-bank table of rows that already
// received an extra activation, together with the refresh interval in
// which the trigger happened. Replacement is FIFO; the table is cleared
// when a new refresh window starts. Searching is sequential in hardware
// (hence the 32-cycle search state in the Fig. 2 FSM) but need only finish
// before the bank's next activation.
type HistoryTable struct {
	rows      []int32
	intervals []int32
	valid     []bool
	next      int // FIFO replacement cursor
	// live bounds the slots that can possibly be valid: the FIFO cursor
	// fills slots in order from a cleared table, so until the first
	// wrap-around only the prefix [0, live) has ever been written. Scans
	// stop there — on the hot path the table is usually nearly empty
	// (triggers are rare and the table clears every window), so a lookup
	// touches a handful of slots instead of the full capacity. A fault
	// injection can revive an arbitrary slot, which conservatively resets
	// the bound to the full table.
	live int
}

// NewHistoryTable returns a table with the given capacity (32 entries in
// the paper, 120 B per 1 GB bank).
func NewHistoryTable(entries int) *HistoryTable {
	if entries <= 0 {
		panic("core: history table needs at least one entry")
	}
	return &HistoryTable{
		rows:      make([]int32, entries),
		intervals: make([]int32, entries),
		valid:     make([]bool, entries),
	}
}

// Len returns the capacity of the table.
func (h *HistoryTable) Len() int { return len(h.rows) }

// Lookup returns the stored trigger interval for row and whether the row
// is present.
func (h *HistoryTable) Lookup(row int) (interval int, ok bool) {
	r := int32(row)
	// Scan the row column first: on the hot path most lookups miss, and
	// comparing the 4-byte row addresses touches less memory than loading
	// the valid column for every slot. The predicate is commutative, so
	// the first matching index — and thus the result — is unchanged.
	for i, rv := range h.rows[:h.live] {
		if rv == r && h.valid[i] {
			return int(h.intervals[i]), true
		}
	}
	return 0, false
}

// Record stores (row, interval). If the row is already present its
// timestamp is updated in place; otherwise the FIFO-oldest slot is
// replaced.
func (h *HistoryTable) Record(row, interval int) {
	r := int32(row)
	for i, v := range h.valid[:h.live] {
		if v && h.rows[i] == r {
			h.intervals[i] = int32(interval)
			return
		}
	}
	h.rows[h.next] = r
	h.intervals[h.next] = int32(interval)
	h.valid[h.next] = true
	if h.next >= h.live {
		h.live = h.next + 1
	}
	h.next = (h.next + 1) % len(h.rows)
}

// Clear invalidates all entries (new refresh window). Like the hardware
// it models, it touches only the valid column — the row and interval
// SRAM keeps its old contents.
func (h *HistoryTable) Clear() {
	for i := range h.valid {
		h.valid[i] = false
	}
	h.next = 0
	h.live = 0
}

// Reset returns the table to its power-on state with every field zeroed.
// Replay (Mitigator.Reset) needs the stronger form: a fault injection can
// revive an arbitrary slot, at which point leftover row garbage from the
// previous run would become observable through Lookup and break
// bit-identical replays.
func (h *HistoryTable) Reset() {
	for i := range h.rows {
		h.rows[i] = 0
		h.intervals[i] = 0
	}
	h.Clear()
}

// InjectBitFlip flips one random bit of one random slot, modeling an SRAM
// single-event upset: the valid bit, a row-address bit (within rowBits) or
// an interval-timestamp bit (within intervalBits). Field widths bound what
// a real fault can express — a flipped timestamp stays inside the interval
// register's range. It reports whether stored state changed.
func (h *HistoryTable) InjectBitFlip(src rng.Source, rowBits, intervalBits int) bool {
	i := rng.Intn(src, len(h.rows))
	switch rng.Intn(src, 3) {
	case 0:
		// Valid-bit upset: a live entry vanishes (a tracked aggressor is
		// forgotten) or a stale slot revives with garbage.
		h.valid[i] = !h.valid[i]
	case 1:
		if rowBits < 1 {
			rowBits = 1
		}
		h.rows[i] ^= 1 << rng.Intn(src, rowBits)
	default:
		if intervalBits < 1 {
			intervalBits = 1
		}
		h.intervals[i] ^= 1 << rng.Intn(src, intervalBits)
	}
	// The upset may have revived a slot outside the filled prefix; widen
	// the scan bound so lookups still see every valid slot.
	h.live = len(h.rows)
	return true
}

// Occupancy returns the number of valid entries.
func (h *HistoryTable) Occupancy() int {
	n := 0
	for _, v := range h.valid {
		if v {
			n++
		}
	}
	return n
}

package core

import (
	"testing"
	"testing/quick"

	"tivapromi/internal/mitigation"
)

func TestQuadWeightExamples(t *testing.T) {
	const refInt = 1024
	cases := map[int]int{
		0:    1,    // (1)²/1024 rounds up to 1: minimal escape probability
		31:   1,    // (32)²/1024 = 1
		63:   4,    // 64² = 4096 / 1024
		511:  256,  // 512²/1024
		1023: 1024, // full window: the PARA-level bound
	}
	for w, want := range cases {
		if got := QuadWeight(w, refInt); got != want {
			t.Errorf("QuadWeight(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestQuadWeightProperties(t *testing.T) {
	f := func(a uint16) bool {
		const refInt = 1024
		w := int(a) % refInt
		q := QuadWeight(w, refInt)
		// Positive, bounded by RefInt, and below the linear weight except
		// near the window's end (the late-ramp property).
		if q < 1 || q > refInt {
			return false
		}
		if w > 0 && w < refInt-1 && q > w+1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuadWeightMonotone(t *testing.T) {
	prev := 0
	for w := 0; w < 8192; w++ {
		q := QuadWeight(w, 8192)
		if q < prev {
			t.Fatalf("not monotone at %d", w)
		}
		prev = q
	}
}

// Negative-weight behavior is build-tag dependent: see
// assert_release_test.go and assert_debug_test.go.

func TestQuaPRoMiVariant(t *testing.T) {
	if QuaPRoMi.String() != "QuaPRoMi" {
		t.Fatal("name wrong")
	}
	m := MustNew(QuaPRoMi, 1, testConfig(), 1)
	if m.Name() != "QuaPRoMi" {
		t.Fatal("mitigator name wrong")
	}
	// Quadratic weight at interval 100 for row 0: (101)²/1024 = 10.
	if w := m.EffectiveWeight(0, 0, 100); w != 10 {
		t.Fatalf("weight = %d, want 10", w)
	}
	// Below the linear variant's weight at the same point.
	li := MustNew(LiPRoMi, 1, testConfig(), 1)
	if m.EffectiveWeight(0, 0, 100) >= li.EffectiveWeight(0, 0, 100) {
		t.Fatal("quadratic weight not below linear mid-window")
	}
	if m.ActCycles() > 54 {
		t.Fatal("QuaPRoMi exceeds the act budget")
	}
}

func TestQuaPRoMiRegistered(t *testing.T) {
	f, err := mitigation.Lookup("QuaPRoMi")
	if err != nil {
		t.Fatal(err)
	}
	built := f(mitigation.Target{Banks: 1, RowsPerBank: 16384, RefInt: 1024, FlipThreshold: 16384}, 1)
	if built.Name() != "QuaPRoMi" {
		t.Fatal("factory mismatch")
	}
}

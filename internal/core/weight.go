// Package core implements TiVaPRoMi, the paper's contribution: Row-Hammer
// mitigation with time-varying weighted probabilities in four variants —
// LiPRoMi (linear weighting), LoPRoMi (logarithmic), LoLiPRoMi
// (logarithmic/linear) and CaPRoMi (counter-assisted).
//
// The probability of protecting the neighbors of an activated row r is
// p_r = w_r * Pbase, where w_r counts refresh intervals since r was last
// refreshed (Eq. 1) — or, when r already triggered an extra activation
// recorded in the small per-bank history table, since that trigger. Pbase
// is chosen so RefInt*Pbase ≈ 0.001, bounding the maximum probability at
// PARA's static value.
package core

import "math/bits"

// Weight computes Eq. 1: the number of refresh intervals since the
// reference interval `since` (the row's nominal refresh slot fr, or the
// history-table timestamp), given the current in-window interval i and the
// window length refInt. The wrap case i < since means `since` belongs to
// the previous window.
func Weight(i, since, refInt int) int {
	w := i - since
	if w < 0 {
		w += refInt
	}
	return w
}

// LogWeight computes Eq. 2: w_log = 2^ceil(log2(w+1)). All weights between
// two powers of two share the same value (e.g. every w in [16, 31] maps to
// 32), which is what a modified priority encoder produces in hardware. The
// +1 handles the corner case w = 0 (result 1, never 0: a just-refreshed
// row keeps a nonzero escape probability).
//
// Negative weights are invariant violations (Weight never produces one).
// Release builds skip the check — this is the per-activation hot path —
// and deterministically return 0, a weight that never triggers; builds
// with the `tivadebug` tag panic instead (see assert_debug.go).
func LogWeight(w int) int {
	assertNonNegativeWeight(w)
	if w < 0 {
		return 0
	}
	x := uint(w + 1)
	if x&(x-1) == 0 {
		return int(x)
	}
	return 1 << bits.Len(x)
}

// QuadWeight computes the EXTENSION variant's quadratic weighting:
// ceil((w+1)² / RefInt). Like Eq. 2 it preserves the probability bound
// (w = RefInt-1 maps to RefInt, i.e. p = RefInt * Pbase), but instead of
// ramping fast at low weights it stays minimal for most of the window —
// the mirror-image trade-off of LoPRoMi.
//
// Negative weights follow the LogWeight contract: 0 in release builds, a
// panic under the `tivadebug` build tag.
func QuadWeight(w, refInt int) int {
	assertNonNegativeWeight(w)
	if w < 0 {
		return 0
	}
	x := w + 1
	return (x*x + refInt - 1) / refInt
}

// ProbBits returns the fixed-point comparator resolution that realizes the
// paper's Pbase choice for a given window length: Pbase = 2^-bits with
// RefInt * Pbase = 2^-10 ≈ 0.001 (for the paper's RefInt = 8192 this gives
// the published Pbase = 2^-23). refInt must be a power of two.
func ProbBits(refInt int) uint {
	if refInt <= 0 || refInt&(refInt-1) != 0 {
		panic("core: RefInt must be a positive power of two")
	}
	return uint(bits.Len(uint(refInt))-1) + 10
}

// Package obs is the repo's dependency-free observability subsystem:
// an atomic metrics registry rendered in Prometheus text exposition
// format, a span tracer that emits Chrome trace-event JSON (openable
// in Perfetto), and a structured key=value event log.
//
// Two invariants bound everything in this package:
//
//   - The mitigation act path stays 0 allocs/act with metrics enabled.
//     Hot paths never touch the registry directly; they accumulate
//     plain integers locally and flush deltas into sharded atomics at
//     refresh-interval boundaries (see memctrl.Lane.fireRefreshInterval).
//   - Observability never perturbs determinism. Metrics, spans, and
//     events are strictly write-only taps on existing seams — no
//     simulation or campaign code path reads an obs value to make a
//     decision, and a property test runs identical campaigns obs-on
//     vs obs-off requiring byte-identical Results and reports.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricsEnabled gates the sampled hot-path flushes. It defaults to
// on; the determinism property test and the alloc-gate baseline leg
// turn it off to measure the uninstrumented path.
var metricsEnabled atomic.Bool

func init() { metricsEnabled.Store(true) }

// MetricsEnabled reports whether hot-path metric flushes should run.
func MetricsEnabled() bool { return metricsEnabled.Load() }

// SetMetricsEnabled toggles hot-path metric flushes. Registry writes
// from cold paths are unconditional; this switch only gates the
// sampled per-interval flushes so benchmarks can isolate obs cost.
func SetMetricsEnabled(on bool) { metricsEnabled.Store(on) }

// A Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative deltas are a caller bug; they are ignored so a
// miscomputed delta can never make a counter go backwards.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to n if n is larger (high-water mark).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram is a fixed-bucket cumulative histogram. Bounds are set
// at registration and never change, so observation is lock-free.
type Histogram struct {
	bounds  []float64       // upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one labeled time series inside a family.
type series struct {
	labels string // rendered label block, e.g. `{kind="torn_write"}`; "" if unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name with its HELP/TYPE block and all its
// labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// A Registry holds metric families and renders them as Prometheus
// text exposition format. Registration is mutex-guarded and expected
// at init or other cold paths; reads of registered metrics are
// lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry all package-level metrics
// (see metrics.go) register against, and the one the serve layer
// exposes at GET /metrics.
var Default = NewRegistry()

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels turns ("kind","torn_write","fs","chaos") into
// `{fs="chaos",kind="torn_write"}` with keys sorted for stable output.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validName(kv[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
		}
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// lookup finds or creates the (family, series) for name+labels.
// Re-registering the same name+labels returns the existing metric, so
// package-level vars and tests can both call the constructors freely.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.families = append(r.families, f)
		r.byName[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
	}
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: key}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	f.byKey[key] = s
	return s
}

// Counter registers (or returns the existing) counter with the given
// name and optional label key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	s := r.lookup(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		s.h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Uint64, len(bounds)+1),
		}
	}
	return s.h
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; series within a family are sorted by label block.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	// bucket{le="..."} lines carry the le label merged into any series
	// labels; cumulative counts per the exposition format.
	inner := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		if err := writeBucket(w, name, inner, formatFloat(ub), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if err := writeBucket(w, name, inner, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

func writeBucket(w io.Writer, name, inner, le string, cum uint64) error {
	if inner != "" {
		_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, inner, le, cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
	return err
}

package obs

// The process-wide metric catalog. Every subsystem increments these
// package-level vars directly; all register against Default so a
// single WritePrometheus call (GET /metrics, -metrics-out) renders
// the whole flight deck. Names follow Prometheus conventions:
// tivapromi_<noun>_total for counters, plain nouns for gauges.

// Serve layer: job lifecycle, admission control, fan-out health.
var (
	JobsAdmitted = Default.Counter("tivapromi_jobs_admitted_total",
		"Campaign jobs accepted past admission control.")
	JobsRejected = Default.Counter("tivapromi_jobs_rejected_total",
		"Campaign submissions shed at admission (429/503).")
	JobsCompleted = Default.Counter("tivapromi_jobs_completed_total",
		"Campaign jobs finished successfully.")
	JobsFailed = Default.Counter("tivapromi_jobs_failed_total",
		"Campaign jobs finished with an error.")
	JobsCanceled = Default.Counter("tivapromi_jobs_canceled_total",
		"Campaign jobs canceled (drain force-cancel included).")
	HandlerPanics = Default.Counter("tivapromi_handler_panics_total",
		"Panics recovered by the serve layer (handlers and job goroutines).")
	TenantBreakerTrips = Default.Counter("tivapromi_tenant_breaker_trips_total",
		"Tenant circuit-breaker openings after consecutive failures.")
	SSEEventsDropped = Default.Counter("tivapromi_sse_events_dropped_total",
		"Progress events dropped because a subscriber buffer was full.")
	QueueDepth = Default.Gauge("tivapromi_queue_depth",
		"Queued campaign jobs across all tenants (admitted, not yet running).")
	ActiveJobs = Default.Gauge("tivapromi_active_jobs",
		"Campaign jobs currently executing.")
	JobSeconds = Default.Histogram("tivapromi_job_seconds",
		"Wall-clock seconds per campaign job, admission to settle.",
		[]float64{0.01, 0.05, 0.25, 1, 5, 15, 60, 300})
)

// Serving durability: write-ahead job journal and crash recovery.
var (
	JobsRecovered = Default.Counter("tivapromi_jobs_recovered_total",
		"Jobs re-admitted from the write-ahead journal after a restart.")
	IdempotentHits = Default.Counter("tivapromi_idempotent_hits_total",
		"Duplicate Idempotency-Key submissions answered with the original job.")
	JournalAppends = Default.Counter("tivapromi_journal_appends_total",
		"Records appended and fsynced to the write-ahead job journal.")
	JournalAppendErrs = Default.Counter("tivapromi_journal_append_errors_total",
		"Journal append attempts that failed (submission rejected or state record lost).")
	JournalSalvages = Default.Counter("tivapromi_journal_salvages_total",
		"Journal loads that salvaged verifiable records from a damaged log.")
	JournalQuarantines = Default.Counter("tivapromi_journal_quarantines_total",
		"Damaged journal files moved aside to *.corrupt-* for forensics.")
)

// Campaign engine: per-cell outcomes and retry machinery.
var (
	CellsCompleted = Default.Counter("tivapromi_cells_completed_total",
		"Campaign cells that produced a result (fresh or cached).")
	CellsCached = Default.Counter("tivapromi_cells_cached_total",
		"Campaign cells satisfied from the checkpoint cache without simulating.")
	CellsSkipped = Default.Counter("tivapromi_cells_skipped_total",
		"Campaign cells skipped after the retry budget or breaker gave up.")
	CellRetries = Default.Counter("tivapromi_cell_retries_total",
		"Cell-level retry attempts after a transient failure.")
	BreakerTrips = Default.Counter("tivapromi_breaker_trips_total",
		"Per-cell circuit-breaker trips (attempt cap reached).")
	DedupHits = Default.Counter("tivapromi_dedup_hits_total",
		"Checkpoint cache hits (sweep and probe), i.e. work deduplicated across runs and tenants.")
	CellSeconds = Default.Histogram("tivapromi_cell_seconds",
		"Wall-clock seconds per campaign cell.",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60})
)

// Sim runner: attempt-level retry/stall/panic accounting.
var (
	RunAttempts = Default.Counter("tivapromi_run_attempts_total",
		"Individual simulation run attempts (including retries).")
	RunRetries = Default.Counter("tivapromi_run_retries_total",
		"Simulation run attempts retried after a transient error.")
	RunStalls = Default.Counter("tivapromi_run_stalls_total",
		"Simulation runs canceled by the stall watchdog.")
	RunPanics = Default.Counter("tivapromi_run_panics_total",
		"Simulation runs that panicked and were converted to errors.")
)

// Checkpoint store: durability and salvage.
var (
	CheckpointFlushes = Default.Counter("tivapromi_checkpoint_flushes_total",
		"Checkpoint shard flushes committed to disk.")
	CheckpointSalvages = Default.Counter("tivapromi_checkpoint_salvages_total",
		"Checkpoint loads that salvaged a prefix of a damaged file.")
	CheckpointQuarantines = Default.Counter("tivapromi_checkpoint_quarantines_total",
		"Damaged checkpoint files moved aside to *.corrupt-* for forensics.")
)

// Chaos FS: fault injections by kind.
var chaosInjections = map[string]*Counter{}

func init() {
	for _, kind := range []string{
		"torn_write", "short_write", "write_err", "no_space",
		"rename_fail", "fsync_loss", "bit_flip",
	} {
		chaosInjections[kind] = Default.Counter("tivapromi_chaos_injections_total",
			"I/O faults injected by the chaos filesystem, by kind.",
			"kind", kind)
	}
}

// ChaosInjection increments the injection counter for kind. The map
// is fully populated at init and never written afterwards, so lookups
// are race-free; an unknown kind falls through to the mutex-guarded
// registry, which is fine for a fault-injection path.
func ChaosInjection(kind string) {
	c := chaosInjections[kind]
	if c == nil {
		c = Default.Counter("tivapromi_chaos_injections_total",
			"I/O faults injected by the chaos filesystem, by kind.",
			"kind", kind)
	}
	c.Inc()
}

// Device/controller scale: sampled from lane refresh-interval
// boundaries and per-run collection — never from the act fast path.
var (
	Accesses = Default.Counter("tivapromi_accesses_total",
		"Memory accesses driven through lane controllers (sampled at refresh-interval boundaries).")
	Acts = Default.Counter("tivapromi_acts_total",
		"Row activations issued, mitigation extras included (sampled per run).")
	SparseStateBytes = Default.Gauge("tivapromi_sparse_state_bytes",
		"High-water estimate of sparse DRAM state bytes in a single simulated device.")
	TouchedRows = Default.Gauge("tivapromi_touched_rows",
		"High-water count of distinct rows touched in a single simulated device.")
)

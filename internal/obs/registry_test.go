package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "help")
	b := r.Counter("test_total", "other help ignored")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	l1 := r.Counter("test_labeled_total", "h", "kind", "x")
	l2 := r.Counter("test_labeled_total", "h", "kind", "y")
	l1b := r.Counter("test_labeled_total", "h", "kind", "x")
	if l1 == l2 {
		t.Fatal("distinct labels returned the same counter")
	}
	if l1 != l1b {
		t.Fatal("same labels returned distinct counters")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_x_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_seconds latency",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledCounterExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_inj_total", "by kind", "kind", "torn_write").Add(3)
	r.Counter("test_inj_total", "by kind", "kind", "bit_flip").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE test_inj_total counter") != 1 {
		t.Fatalf("want exactly one TYPE line for the family:\n%s", out)
	}
	for _, want := range []string{
		`test_inj_total{kind="torn_write"} 3`,
		`test_inj_total{kind="bit_flip"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Series must be sorted by label block for stable scrapes.
	if strings.Index(out, `kind="bit_flip"`) > strings.Index(out, `kind="torn_write"`) {
		t.Errorf("series not sorted by label:\n%s", out)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_esc_total", "h", "kind", `a"b\c`+"\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `test_esc_total{kind="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", buf.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "h")
	h := r.Histogram("test_conc_seconds", "h", []float64{1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-12000) > 1e-6 {
		t.Fatalf("histogram sum = %g, want 12000", h.Sum())
	}
}

func TestDefaultCatalogRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		"tivapromi_jobs_admitted_total",
		"tivapromi_dedup_hits_total",
		"tivapromi_queue_depth",
		"tivapromi_cell_retries_total",
		"tivapromi_breaker_trips_total",
		"tivapromi_run_stalls_total",
		"tivapromi_checkpoint_flushes_total",
		"tivapromi_checkpoint_salvages_total",
		"tivapromi_chaos_injections_total",
		"tivapromi_sparse_state_bytes",
		"tivapromi_job_seconds_bucket",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("default catalog missing %q", fam)
		}
	}
}

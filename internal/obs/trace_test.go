package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// chromeTrace mirrors the subset of the trace-event format we emit,
// for round-trip validation with the stdlib decoder.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		DroppedEvents uint64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Ts   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		Pid  int64             `json:"pid"`
		Tid  int64             `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)

	sp := StartSpan("cell", "campaign", "section", "table2", "cell", "3")
	time.Sleep(time.Millisecond)
	sp.End("outcome", "ok")
	Instant("retry", "runner", "attempt", "2")
	SpanBetween("queue-wait", "serve", tr.start, tr.start.Add(5*time.Millisecond), "tenant", "a")

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(got.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(got.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range got.TraceEvents {
		byName[ev.Name] = i
		if ev.Pid != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.Pid)
		}
	}
	cell := got.TraceEvents[byName["cell"]]
	if cell.Ph != "X" || cell.Dur < 900 {
		t.Errorf("cell span ph=%q dur=%dus, want X with dur >= 900us", cell.Ph, cell.Dur)
	}
	if cell.Args["section"] != "table2" || cell.Args["outcome"] != "ok" {
		t.Errorf("cell args = %v, open+close args not merged", cell.Args)
	}
	retry := got.TraceEvents[byName["retry"]]
	if retry.Ph != "i" || retry.Args["attempt"] != "2" {
		t.Errorf("instant = %+v", retry)
	}
	qw := got.TraceEvents[byName["queue-wait"]]
	if qw.Dur < 4900 || qw.Dur > 5100 {
		t.Errorf("retroactive span dur = %dus, want ~5000", qw.Dur)
	}
}

func TestTracerOffIsNoop(t *testing.T) {
	SetTracer(nil)
	sp := StartSpan("x", "y", "k", "v")
	sp.End()
	Instant("x", "y")
	SpanBetween("x", "y", time.Now(), time.Now())
	// Nothing to assert beyond "did not panic"; allocation behavior is
	// covered by the hotpath alloc gate.
}

func TestTracerTidReuse(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	// Sequential spans must reuse track 1 rather than climbing.
	for i := 0; i < 5; i++ {
		StartSpan("s", "c").End()
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, ev := range got.TraceEvents {
		if ev.Tid != 1 {
			t.Fatalf("sequential spans spread over tids: %+v", got.TraceEvents)
		}
	}
}

func TestTracerBoundedBuffer(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxTraceEvents+10; i++ {
		tr.push(traceEvent{name: "e", ph: 'i'})
	}
	if tr.Len() != maxTraceEvents {
		t.Fatalf("buffer grew past cap: %d", tr.Len())
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	SetTracer(tr)
	defer SetTracer(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := StartSpan("w", "test")
				sp.End()
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("concurrent trace does not parse: %v", err)
	}
	if len(got.TraceEvents) != 1600 {
		t.Fatalf("got %d events, want 1600", len(got.TraceEvents))
	}
}

func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	SetEventSink(&buf)
	defer SetEventSink(nil)
	Emit("run-retry", "seed", "42", "err", `stall detected`, "msg", "two words")
	line := buf.String()
	for _, want := range []string{"event=run-retry", "seed=42", `msg="two words"`} {
		if !strings.Contains(line, want) {
			t.Errorf("event line missing %q: %s", want, line)
		}
	}
	if !strings.HasPrefix(line, "ts=") || !strings.HasSuffix(line, "\n") {
		t.Errorf("malformed event line: %q", line)
	}
	buf.Reset()
	SetEventSink(nil)
	Emit("ignored")
	if buf.Len() != 0 {
		t.Error("emit after sink removal still wrote")
	}
}

package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Structured event logging: one line per state transition worth a
// human's attention (retry, stall, breaker trip, quarantine,
// DEGRADED), in key=value form greppable by machines. Disabled until
// a sink is installed; the fast path is one atomic load.

type eventSink struct {
	mu sync.Mutex
	w  io.Writer
}

var sink atomic.Pointer[eventSink]

// SetEventSink routes Emit lines to w; nil disables event logging.
func SetEventSink(w io.Writer) {
	if w == nil {
		sink.Store(nil)
		return
	}
	sink.Store(&eventSink{w: w})
}

// Emit writes one `ts=<RFC3339Nano> event=<name> k=v ...` line to the
// installed sink. Values containing spaces, quotes, or '=' are
// quoted. No-op (and allocation-free) when no sink is installed.
func Emit(event string, kv ...string) {
	s := sink.Load()
	if s == nil {
		return
	}
	var b strings.Builder
	b.Grow(64 + 16*len(kv))
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
	b.WriteString(" event=")
	b.WriteString(quoteIfNeeded(event))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(kv[i+1]))
	}
	b.WriteByte('\n')
	s.mu.Lock()
	io.WriteString(s.w, b.String())
	s.mu.Unlock()
}

func quoteIfNeeded(v string) string {
	if v == "" {
		return `""`
	}
	if strings.ContainsAny(v, " \t\n\"=") {
		return fmt.Sprintf("%q", v)
	}
	return v
}

package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// The tracer records spans (named intervals with key=value args) and
// instant markers, and renders them as Chrome trace-event JSON —
// the format chrome://tracing and Perfetto (ui.perfetto.dev) open
// directly. Tracing is process-global and off by default: when no
// tracer is installed, StartSpan returns a zero Span whose End is a
// no-op and the call costs two atomic loads, so instrumentation can
// stay in place permanently.

// maxTraceEvents bounds the in-memory event buffer. A long soak
// cannot OOM the process through tracing; overflow is counted and
// reported in the trace metadata instead.
const maxTraceEvents = 1 << 18

// A Tracer accumulates trace events in memory until WriteJSON renders
// them. All methods are safe for concurrent use.
type Tracer struct {
	start time.Time // wall-clock origin; ts fields are offsets from it

	mu      sync.Mutex
	events  []traceEvent
	dropped uint64

	// tid allocation: spans borrow the lowest free track id for their
	// duration so concurrent spans render as compact swimlanes in
	// Perfetto rather than one row per goroutine.
	tidMu   sync.Mutex
	tidFree []int64
	tidNext int64
}

type traceEvent struct {
	name string
	cat  string
	ph   byte // 'X' complete, 'i' instant
	ts   int64
	dur  int64
	tid  int64
	args []string // key/value pairs
}

// NewTracer returns a tracer whose timestamps are offsets from now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), tidNext: 1}
}

// global holds the installed *Tracer (or nil). atomic.Pointer keeps
// CurrentTracer cheap enough to call from instrumentation sites
// unconditionally.
var global atomic.Pointer[Tracer]

// SetTracer installs t as the process-global tracer; nil uninstalls.
func SetTracer(t *Tracer) {
	if t == nil {
		global.Store(nil)
		return
	}
	global.Store(t)
}

// CurrentTracer returns the installed tracer, or nil when tracing is
// off.
func CurrentTracer() *Tracer { return global.Load() }

// A Span is an in-flight interval. The zero Span (returned when
// tracing is off) is valid and End on it is a no-op.
type Span struct {
	t    *Tracer
	name string
	cat  string
	ts   int64
	tid  int64
	args []string
}

// StartSpan opens a span on the global tracer. kv is an even-length
// list of key/value argument strings copied into the trace. When no
// tracer is installed the call allocates nothing (the variadic slice
// stays on the caller's stack).
func StartSpan(name, cat string, kv ...string) Span {
	t := global.Load()
	if t == nil {
		return Span{}
	}
	return t.startSpan(name, cat, kv)
}

func (t *Tracer) startSpan(name, cat string, kv []string) Span {
	return Span{
		t:    t,
		name: name,
		cat:  cat,
		ts:   time.Since(t.start).Microseconds(),
		tid:  t.acquireTid(),
		args: append([]string(nil), kv...),
	}
}

// End closes the span, appending a complete ('X') event. Extra kv
// pairs recorded at close time (e.g. an outcome) are merged after the
// open-time args.
func (s Span) End(kv ...string) {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.start).Microseconds()
	dur := end - s.ts
	if dur < 1 {
		dur = 1 // zero-duration slices are invisible in Perfetto
	}
	args := s.args
	if len(kv) > 0 {
		args = append(args, kv...)
	}
	s.t.push(traceEvent{name: s.name, cat: s.cat, ph: 'X', ts: s.ts, dur: dur, tid: s.tid, args: args})
	s.t.releaseTid(s.tid)
}

// SpanBetween records a retroactive complete event for an interval
// already over — e.g. a job's queue wait, reconstructed from its
// created/started timestamps after the fact.
func SpanBetween(name, cat string, start, end time.Time, kv ...string) {
	t := global.Load()
	if t == nil {
		return
	}
	ts := start.Sub(t.start).Microseconds()
	if ts < 0 {
		ts = 0
	}
	dur := end.Sub(start).Microseconds()
	if dur < 1 {
		dur = 1
	}
	tid := t.acquireTid()
	t.push(traceEvent{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, tid: tid, args: append([]string(nil), kv...)})
	t.releaseTid(tid)
}

// Instant records a zero-duration marker (retry fired, breaker
// tripped, checkpoint quarantined).
func Instant(name, cat string, kv ...string) {
	t := global.Load()
	if t == nil {
		return
	}
	tid := t.acquireTid()
	t.push(traceEvent{name: name, cat: cat, ph: 'i', ts: time.Since(t.start).Microseconds(), tid: tid, args: append([]string(nil), kv...)})
	t.releaseTid(tid)
}

func (t *Tracer) push(ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

func (t *Tracer) acquireTid() int64 {
	t.tidMu.Lock()
	defer t.tidMu.Unlock()
	if n := len(t.tidFree); n > 0 {
		// Lowest free id keeps lanes dense; the free list is kept
		// sorted descending so the minimum pops off the end.
		id := t.tidFree[n-1]
		t.tidFree = t.tidFree[:n-1]
		return id
	}
	id := t.tidNext
	t.tidNext++
	return id
}

func (t *Tracer) releaseTid(id int64) {
	t.tidMu.Lock()
	t.tidFree = append(t.tidFree, id)
	sort.Slice(t.tidFree, func(i, j int) bool { return t.tidFree[i] > t.tidFree[j] })
	t.tidMu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the buffer cap.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func jsonEscape(s string) string {
	if !strings.ContainsAny(s, `"\`+"\n\t\r") && !hasControl(s) {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	return b.String()
}

func hasControl(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 {
			return true
		}
	}
	return false
}

// WriteJSON renders the buffered events as a Chrome trace-event JSON
// object. Events are sorted by timestamp so the file is stable for a
// given set of spans regardless of goroutine interleaving of End
// calls at equal instants.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].tid < events[j].tid
	})
	var b strings.Builder
	b.WriteString(`{"displayTimeUnit":"ms","otherData":{"generator":"tivapromi","droppedEvents":`)
	fmt.Fprintf(&b, "%d", dropped)
	b.WriteString(`},"traceEvents":[`)
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":"%s","cat":"%s","ph":"%c","ts":%d`,
			jsonEscape(ev.name), jsonEscape(ev.cat), ev.ph, ev.ts)
		if ev.ph == 'X' {
			fmt.Fprintf(&b, `,"dur":%d`, ev.dur)
		}
		if ev.ph == 'i' {
			b.WriteString(`,"s":"t"`)
		}
		fmt.Fprintf(&b, `,"pid":1,"tid":%d`, ev.tid)
		if len(ev.args) >= 2 {
			b.WriteString(`,"args":{`)
			for j := 0; j+1 < len(ev.args); j += 2 {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, `"%s":"%s"`, jsonEscape(ev.args[j]), jsonEscape(ev.args[j+1]))
			}
			b.WriteByte('}')
		}
		b.WriteByte('}')
		if b.Len() >= 1<<16 {
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
			b.Reset()
		}
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// compile-time guard that Span stays small enough to pass by value
// cheaply; instrumentation creates one per cell/attempt/job.
var _ = func() bool {
	if unsafe.Sizeof(Span{}) > 96 {
		panic("obs: Span grew past a cacheline pair")
	}
	return true
}()

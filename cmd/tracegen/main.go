// Command tracegen produces DRAM activation traces.
//
// Two front-ends are available: the fast statistical workload generators
// (default, what the experiments use), and the cycle-less CPU/cache
// front-end (-frontend), which executes SPEC-like programs plus a
// flush+reload attacker through 64 KB L1 / 256 KB L2 caches — the
// substitute for the paper's gem5 capture.
//
//	tracegen -o trace.bin -windows 2
//	tracegen -o trace.bin -frontend -ops 2000000
//	tracegen -info trace.bin
//	tracegen -analyze trace.bin           # activation-concentration profile
//	tracegen -totext trace.bin -o t.txt   # export for external tools
//	tracegen -fromtext t.txt -o t.bin     # import (e.g. converted Ramulator traces)
package main

import (
	"flag"
	"fmt"
	"os"

	"tivapromi/internal/addr"
	"tivapromi/internal/cache"
	"tivapromi/internal/cpu"
	"tivapromi/internal/dram"
	"tivapromi/internal/sim"
	"tivapromi/internal/trace"
)

var (
	out      = flag.String("o", "", "output trace file")
	info     = flag.String("info", "", "print a summary of an existing trace file")
	analyze  = flag.String("analyze", "", "print the activation profile of an existing trace file")
	toText   = flag.String("totext", "", "convert a binary trace to the text format (writes to -o)")
	fromText = flag.String("fromtext", "", "convert a text trace to the binary format (writes to -o)")
	windows  = flag.Int("windows", 2, "refresh windows (statistical front-end)")
	frontend = flag.Bool("frontend", false, "use the CPU/cache front-end")
	ops      = flag.Uint64("ops", 4_000_000, "instruction-level operations (cache front-end)")
	paper    = flag.Bool("paper", false, "full Table I scale")
	seed     = flag.Uint64("seed", 1, "seed")
)

func main() {
	flag.Parse()
	if *info != "" {
		if err := printInfo(*info); err != nil {
			fatal(err)
		}
		return
	}
	if *analyze != "" {
		if err := printProfile(*analyze); err != nil {
			fatal(err)
		}
		return
	}
	if *toText != "" || *fromText != "" {
		if err := convert(*toText, *fromText, *out); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	cfg := sim.DefaultConfig()
	cfg.Windows = *windows
	cfg.Seed = *seed
	if *paper {
		cfg.Params = dram.PaperParams()
	}
	w, err := trace.NewWriter(f, trace.Header{
		Banks:       cfg.Params.Banks,
		RowsPerBank: cfg.Params.RowsPerBank,
		RefInt:      cfg.Params.RefInt,
	})
	if err != nil {
		fatal(err)
	}
	if *frontend {
		err = generateWithFrontend(cfg.Params, w, *ops, *seed)
	} else {
		err = sim.RecordTrace(cfg, w)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d events to %s\n", w.Events(), *out)
}

// generateWithFrontend runs four programs (three SPEC-like, one attacker)
// through the cache hierarchy; surviving DRAM operations become trace
// activations with a row-buffer filter, and refresh-interval boundaries
// are inserted on a service-time clock.
func generateWithFrontend(p dram.Params, w *trace.Writer, nops, seed uint64) error {
	g := addr.Geometry{
		Channels: 1, Ranks: 1, Banks: p.Banks,
		Rows: p.RowsPerBank, Cols: p.RowBytes / 64, BusBytes: 64,
	}
	mapper, err := addr.NewMapper(g, addr.RowBankCol)
	if err != nil {
		return err
	}
	// The attacker hammers two aggressor rows in bank 1.
	agg := []uint64{mapper.RowAddress(1, 5000), mapper.RowAddress(1, 5002)}
	programs := []cpu.Program{
		cpu.NewStreamProgram(0, 64<<20, 64, seed+1),
		cpu.NewChaseProgram(1<<30, 32<<20, seed+2),
		cpu.NewHammerProgram(agg),
		cpu.NewStreamProgram(1<<31, 64<<20, 8, seed+3),
	}

	openRows := make([]int32, g.TotalBanks())
	for i := range openRows {
		openRows[i] = -1
	}
	var werr error
	timeNs := 0.0
	nextRef := p.TRefIntNs
	sys, err := cpu.NewSystem(programs, cpu.DefaultL1(), cpu.DefaultL2(), func(m cache.MemOp) {
		if werr != nil {
			return
		}
		c := mapper.Decode(m.Addr)
		fb := c.FlatBank(g)
		if openRows[fb] == int32(c.Row) {
			timeNs += 15
		} else {
			openRows[fb] = int32(c.Row)
			timeNs += p.TRCNs
			werr = w.WriteAct(fb, c.Row)
		}
		for timeNs >= nextRef && werr == nil {
			werr = w.WriteIntervalEnd()
			nextRef += p.TRefIntNs
			for i := range openRows {
				openRows[i] = -1
			}
		}
	})
	if err != nil {
		return err
	}
	sys.Run(nops)
	if werr != nil {
		return werr
	}
	return w.Flush()
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	h := r.Header()
	acts, intervals := uint64(0), uint64(0)
	perBank := make([]uint64, h.Banks)
	err = r.ForEach(func(ev trace.Event) error {
		switch ev.Kind {
		case trace.KindAct:
			acts++
			perBank[ev.Bank]++
		case trace.KindIntervalEnd:
			intervals++
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace %s\n", path)
	fmt.Printf("  geometry: %d banks x %d rows, RefInt %d\n", h.Banks, h.RowsPerBank, h.RefInt)
	fmt.Printf("  activations: %d over %d refresh intervals", acts, intervals)
	if intervals > 0 {
		fmt.Printf(" (avg %.1f per bank-interval)", float64(acts)/float64(intervals)/float64(h.Banks))
	}
	fmt.Println()
	for b, n := range perBank {
		fmt.Printf("  bank %d: %d activations\n", b, n)
	}
	return nil
}

func printProfile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	p, err := trace.Analyze(r)
	if err != nil {
		return err
	}
	return p.Render(os.Stdout)
}

// convert moves a trace between the binary and text formats.
func convert(toTextPath, fromTextPath, outPath string) error {
	if outPath == "" {
		return fmt.Errorf("conversion needs -o")
	}
	dst, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer dst.Close()
	if toTextPath != "" {
		src, err := os.Open(toTextPath)
		if err != nil {
			return err
		}
		defer src.Close()
		r, err := trace.NewReader(src)
		if err != nil {
			return err
		}
		return trace.WriteText(r, dst)
	}
	src, err := os.Open(fromTextPath)
	if err != nil {
		return err
	}
	defer src.Close()
	_, n, err := trace.ReadText(src, dst)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d events to %s\n", n, outPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// Command tivasim runs one Row-Hammer mitigation simulation and prints
// the measured metrics.
//
//	tivasim -technique LoLiPRoMi -windows 4 -seeds 5
//	tivasim -technique none                      # unprotected baseline
//	tivasim -technique all                       # all nine techniques
//	tivasim -technique PARA -policy random -aggressors 8
//	tivasim -replay trace.bin -technique TWiCe   # replay a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tivapromi/internal/dram"
	"tivapromi/internal/report"
	"tivapromi/internal/sim"
	"tivapromi/internal/trace"
)

var (
	technique  = flag.String("technique", "LoLiPRoMi", "mitigation technique, 'none', or 'all'")
	windows    = flag.Int("windows", 4, "refresh windows to simulate")
	seedCount  = flag.Int("seeds", 3, "seeds (runs) per technique")
	policyName = flag.String("policy", "neighbors", "refresh policy: neighbors|remapped|random|mask")
	paper      = flag.Bool("paper", false, "full Table I scale (slow)")
	share      = flag.Float64("share", 0.65, "attacker share of the access stream")
	aggressors = flag.Int("aggressors", 20, "maximum aggressors per targeted bank")
	remap      = flag.Int("remap", 0, "spare-row remap swaps on the device")
	replay     = flag.String("replay", "", "replay a recorded trace file instead of simulating")
)

func main() {
	flag.Parse()
	if *replay != "" {
		if err := replayTrace(*replay, *technique); err != nil {
			fatal(err)
		}
		return
	}

	cfg := sim.DefaultConfig()
	cfg.Windows = *windows
	cfg.AttackShare = *share
	cfg.MaxAggressors = *aggressors
	cfg.RemapSwaps = *remap
	if *paper {
		cfg.Params = dram.PaperParams()
	}
	switch *policyName {
	case "neighbors":
		cfg.Policy = sim.PolicyNeighbors
	case "remapped":
		cfg.Policy = sim.PolicyRemapped
	case "random":
		cfg.Policy = sim.PolicyRandom
	case "mask":
		cfg.Policy = sim.PolicyMaskedCounter
	default:
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}

	var names []string
	switch *technique {
	case "all":
		names = append([]string{""}, sim.TechniqueNames()...)
	case "none":
		names = []string{""}
	default:
		names = strings.Split(*technique, ",")
	}

	t := report.NewTable(
		fmt.Sprintf("tivasim — %d windows, policy %v, attack share %.0f%%, up to %d aggressors/bank",
			cfg.Windows, cfg.Policy, 100*cfg.AttackShare, cfg.MaxAggressors),
		"technique", "overhead", "FPR", "flips", "table/bank", "acts", "avg acts/interval")
	for _, name := range names {
		sum, err := sim.RunSeeds(cfg, name, sim.Seeds(1, *seedCount))
		if err != nil {
			fatal(err)
		}
		r := sum.Runs[0]
		t.Add(sum.Technique,
			report.PctErr(sum.Overhead.Mean(), sum.Overhead.StdDev()),
			report.Pct(sum.FPR.Mean()),
			fmt.Sprint(sum.TotalFlips),
			report.Bytes(sum.TableBytes),
			fmt.Sprint(sum.TotalActs),
			fmt.Sprintf("%.1f", r.AvgActsPerInterval))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func replayTrace(path, technique string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	if technique == "none" || technique == "all" {
		technique = ""
	}
	res, err := sim.ReplayTrace(r, technique, 0)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("replay of %s", path),
		"technique", "overhead", "flips", "acts", "avg acts/interval")
	t.Add(res.Technique, report.Pct(res.OverheadPct), fmt.Sprint(res.Flips),
		fmt.Sprint(res.TotalActs), fmt.Sprintf("%.1f", res.AvgActsPerInterval))
	return t.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tivasim:", err)
	os.Exit(1)
}

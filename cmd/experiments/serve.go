package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"tivapromi/internal/serve"
	"tivapromi/internal/servetest"
)

// serveCmd runs the multi-tenant campaign server until sigCtx dies
// (SIGINT/SIGTERM), then winds it down in order: drain the campaign
// server first — admission closes, queued jobs are cancelled, in-flight
// jobs get cfg.DrainTimeout to finish or reach the checkpoint — then
// shut the HTTP listener down, then hard-stop whatever survived the
// grace. The server's own lifetime is deliberately NOT the signal
// context: jobs must keep running while the drain completes them.
func (a *app) serveCmd(sigCtx context.Context, addr string, cfg serve.Config) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "serve: listening on %s (workers=%d queue-depth=%d checkpoint=%q)\n",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, cfg.CheckpointPath)

	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	select {
	case err := <-httpErr:
		// The listener died on its own (port stolen, fd limit, …) —
		// nothing to drain into, report it.
		return fmt.Errorf("serve: http server: %w", err)
	case <-sigCtx.Done():
	}
	fmt.Fprintln(a.stdout, "serve: signal received, draining")

	// Drain before Shutdown: status/event polls must keep answering
	// while in-flight jobs run out their grace.
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout+30*time.Second)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	shutCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := hs.Shutdown(shutCtx); err != nil {
		hs.Close()
	}
	if err := <-httpErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(a.stdout, "serve: http server exit: %v\n", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("serve: drain: %w", drainErr)
	}
	fmt.Fprintln(a.stdout, "serve: drained cleanly")
	return nil
}

// serveChaos runs the crash-durability torture harness
// (internal/servetest.RunServeChaos) and prints its report: a journaled
// server hard-killed at a seeded journal-commit ordinal, its journal
// tail torn, restarted, and held to the durability contract — every
// accepted job recovered and re-rendered byte-identically, idempotent
// re-POSTs answered with the original id and zero re-executions, and
// the SSE resume protocol honest across the incarnation boundary.
func (a *app) serveChaos(ctx context.Context, cfg servetest.ChaosConfig) error {
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "serve-chaos-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Dir = dir
	} else if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return err
	}
	rep, err := servetest.RunServeChaos(ctx, cfg)
	fmt.Fprintf(a.stdout, "serve-chaos: seed %#x: %d accepted, killed=%v at journal commit %d, tampered=%v, %d recovered, %d/%d reports identical, %d idempotent replay(s), %d re-execution(s), snapshot-fallback=%v resume-checked=%v, %d corpse(s), %d leaked goroutine(s)\n",
		cfg.Seed, rep.Submitted, rep.Killed, rep.KillOrdinal, rep.Tampered,
		rep.Recovered, rep.Compared, rep.Submitted, rep.IdempotentReplays,
		rep.ReExecutions, rep.SnapshotFallback, rep.ResumeChecked,
		rep.Corpses, rep.LeakedGoroutines)
	if err != nil {
		return err
	}
	if err := rep.Check(); err != nil {
		return err
	}
	fmt.Fprintln(a.stdout, "serve-chaos: crash-durability contract holds")
	return nil
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV):
//
//	experiments table1           — Table I: simulated system specification
//	experiments table2           — Table II: FSM cycles per act/ref command
//	experiments table3           — Table III: LUTs, vulnerability, overhead, FPR
//	experiments fig4             — Fig. 4: table size vs activation overhead
//	experiments flooding         — §IV: flooding attack, acts to first protection
//	experiments refreshpolicies  — §IV: the four refresh-address policies
//	experiments aggressors       — §IV: 1..20 aggressors per targeted bank
//	experiments ablation         — design-choice sweeps (table sizes, Pbase)
//	experiments extensions       — CAT / TRR / QuaPRoMi, beyond the paper
//	experiments latency          — request latency through the cycle-accurate scheduler
//	experiments thresholds       — flood-survival margins at modern flip thresholds
//	experiments faults           — degradation table: every mitigation under injected faults
//	experiments all              — everything above, as one merged campaign
//	experiments chaos            — crash-consistency torture: run a real
//	                               campaign against a fault-injecting
//	                               filesystem, kill it at randomized
//	                               checkpoint-flush boundaries, corrupt the
//	                               checkpoint between cycles, resume, and
//	                               verify the final report is byte-identical
//	                               to an undisturbed run
//	experiments bench            — run `all` at -workers 1 and -workers N,
//	                               verify byte-identical output, write timings
//	experiments profile          — hot-path benchmark harness: per-technique
//	                               act-path ns/act + allocs/act, and the
//	                               full pipeline per stage (generation,
//	                               reference, block, bank-sharded) with
//	                               result-equality checks, written to
//	                               BENCH_hotpath.json (optionally with
//	                               pprof CPU/heap profiles)
//	experiments scale            — scale-out gate: simulate a full-DIMM
//	                               geometry (sparse state, heap bounded by
//	                               touched rows, asserted) and time a
//	                               multi-worker seed sweep serial vs
//	                               parallel, folding both measurements into
//	                               BENCH_campaign.json. On a single-CPU
//	                               host the speedup claim is withheld
//	                               (speedup_claimed=false) and the command
//	                               refuses to run without -allow-single-cpu
//	experiments serve            — long-running multi-tenant campaign server:
//	                               HTTP/JSON campaign submission, per-tenant
//	                               fair queuing and admission control over one
//	                               shared worker pool, SSE progress streams,
//	                               cross-tenant dedup through the -checkpoint
//	                               cache, write-ahead job journal via -journal
//	                               (idempotent submission, crash recovery),
//	                               graceful drain on SIGINT/SIGTERM
//	experiments serve-chaos      — crash-durability torture for the serving
//	                               layer: a journaled server is hard-killed
//	                               at a seeded journal-commit ordinal, its
//	                               journal tail torn, then restarted — every
//	                               accepted job must be re-admitted and
//	                               re-rendered byte-identically, duplicate
//	                               Idempotency-Key POSTs answered with the
//	                               original id and zero re-executions, and
//	                               pre-crash SSE resume tokens refused with
//	                               a snapshot instead of silently aliased
//
// Every section is a campaign.Spec in the report.Sections registry; this
// command only merges the selected specs, runs them through the campaign
// scheduler (all sections' cells in parallel under one worker bound) and
// renders the results in section order — so the output is byte-identical
// whatever -workers says.
//
// Flags:
//
//	-seeds N          seeds per data point (default 5)
//	-windows N        refresh windows per run (default 4)
//	-trials N         flooding trials (default 25)
//	-paper            use the full Table I scale (slow) for the simulations
//	-csv              also print Fig. 4 as CSV
//	-svg PATH         also write Fig. 4 as an SVG file
//	-checkpoint PATH  persist per-seed and per-probe results (and finished
//	                  sections) to a JSON checkpoint; a killed run re-uses
//	                  them on restart
//	-checkpoint-shards N
//	                  with -checkpoint: use the sharded directory layout —
//	                  PATH becomes a directory of N per-cell-group shard
//	                  files and a flush rewrites only the shards that
//	                  changed (an existing directory's on-disk count wins)
//	-geometry RxGxBxROWS
//	                  override the device geometry as
//	                  ranks x bank-groups x banks x rows-per-bank
//	                  (e.g. 1x8x4x65536); geometries of >= 2M rows
//	                  automatically use the sparse per-row state
//	-allow-single-cpu bench/scale: run on a single-CPU host anyway,
//	                  recording timings with speedup_claimed=false instead
//	                  of refusing
//	-resume           with -checkpoint: also replay fully finished sections
//	                  from the checkpoint instead of recomputing them
//	-workers N        bound the campaign's concurrent simulations (default
//	                  GOMAXPROCS)
//	-shards N         fan each simulation's lane servicing out over N
//	                  goroutines (bank-sharded; results are byte-identical
//	                  at any value, 0/1 = serial). Multiplies with -workers:
//	                  use -shards when a campaign has fewer concurrent runs
//	                  than cores
//	-timeout D        per-run deadline for one simulation (0 = none)
//	-stall D          stall watchdog: cancel and retry a run whose progress
//	                  heartbeat goes silent for D (0 = off)
//	-retry-budget N   total cell-level re-attempts the campaign may spend on
//	                  transient failures (0 = none); cells that keep failing
//	                  trip a circuit breaker and are skipped, degrading the
//	                  report instead of aborting it
//	-progress         stream per-cell progress and ETA to stderr
//	-chaos-seed N     chaos: master seed for the torture schedule (default 1)
//	-chaos-cycles N   chaos: kill/resume cycles before the clean final run
//	                  (default 3)
//	-chaos-corrupt    chaos: also flip one checkpoint byte between cycles
//	                  (default true)
//	-bench-out PATH   where `bench` writes its JSON report (default
//	                  BENCH_campaign.json)
//	-bench-min-speedup X
//	                  bench: fail when the parallel run's speedup over the
//	                  serial run is below X on a multi-core host (0 = no
//	                  floor; single-CPU hosts are never gated)
//	-addr HOST:PORT   serve: listen address (default :8077)
//	-queue-depth N    serve: per-tenant pending-job bound before 429s
//	                  (default 8)
//	-max-tenants N    serve: distinct-tenant bound (default 64)
//	-drain-timeout D  serve: grace given to in-flight jobs on shutdown
//	                  before they are force-cancelled (default 30s)
//	-journal PATH     serve: write-ahead job journal — every accepted
//	                  submission and state change is fsync'd here, so a
//	                  restarted server re-admits interrupted jobs and
//	                  answers duplicate Idempotency-Key POSTs with the
//	                  original job ("" = off)
//	-recover          serve: with -journal, re-run jobs interrupted by a
//	                  crash (default true; -recover=false fails them
//	                  typed instead, keeping only the idempotency ledger)
//	-profile-out PATH where `profile` writes its JSON report (default
//	                  BENCH_hotpath.json)
//	-perf-baseline PATH
//	                  profile: compare the fresh report against this
//	                  committed BENCH_hotpath.json and fail on a >15%
//	                  regression (absolute rates on a same-shaped machine,
//	                  speedup ratios otherwise)
//	-cpuprofile PATH  profile: also capture a pprof CPU profile of the
//	                  pipeline measurements
//	-memprofile PATH  profile: also capture a pprof heap profile at exit
//	-metrics-out PATH write the process-wide metric registry (Prometheus
//	                  text exposition) to PATH at exit, on every exit
//	                  path — a failed run is exactly when the flight
//	                  recorder matters
//	-trace-out PATH   record spans (campaign cells, run attempts,
//	                  checkpoint flushes, shard workers, serve jobs) and
//	                  write them as Chrome trace-event JSON to PATH at
//	                  exit; load it in Perfetto (ui.perfetto.dev) or
//	                  chrome://tracing
//	-pprof-addr HOST:PORT
//	                  serve net/http/pprof on a side listener for live
//	                  CPU/heap/goroutine profiles of any long run
//	-no-metrics       disable the sampled metric flushes (the act path's
//	                  two atomic adds per interval); mainly for A/B-ing
//	                  obs overhead and the determinism property test
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"syscall"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/chaostest"
	"tivapromi/internal/dram"
	"tivapromi/internal/hotpath"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/obs"
	"tivapromi/internal/report"
	"tivapromi/internal/serve"
	"tivapromi/internal/servetest"
	"tivapromi/internal/sim"
)

var (
	seeds     = flag.Int("seeds", 5, "seeds per data point")
	windows   = flag.Int("windows", 4, "refresh windows per run")
	trials    = flag.Int("trials", 25, "flooding trials")
	paper     = flag.Bool("paper", false, "full Table I scale (slow)")
	csvOut    = flag.Bool("csv", false, "print Fig. 4 as CSV too")
	svgOut    = flag.String("svg", "", "also write Fig. 4 as an SVG file at this path")
	ckptPath  = flag.String("checkpoint", "", "JSON checkpoint path for resumable campaigns")
	ckptShard = flag.Int("checkpoint-shards", 0, "with -checkpoint: sharded directory layout with this many shard files (0 = single file)")
	resume    = flag.Bool("resume", false, "with -checkpoint: replay finished sections from the checkpoint")
	geomF     = flag.String("geometry", "", "device geometry ranks x groups x banks x rows, e.g. 1x8x4x65536")
	allow1cpu = flag.Bool("allow-single-cpu", false, "bench/scale: record timings on a single-CPU host with speedup_claimed=false")
	workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	shardsF   = flag.Int("shards", 0, "bank-sharding goroutines inside each simulation (0/1 = serial; results are identical at any value)")
	timeout   = flag.Duration("timeout", 0, "per-run deadline for one simulation (0 = none)")
	stall     = flag.Duration("stall", 0, "stall watchdog: cancel+retry a run silent for this long (0 = off)")
	retryBudg = flag.Int("retry-budget", 0, "total cell-level re-attempts for transient failures (0 = none)")
	progress  = flag.Bool("progress", false, "stream per-cell progress to stderr")
	benchOut  = flag.String("bench-out", "BENCH_campaign.json", "bench: JSON report path")
	profOut   = flag.String("profile-out", "BENCH_hotpath.json", "profile: JSON report path")
	perfBase  = flag.String("perf-baseline", "", "profile: committed baseline BENCH_hotpath.json to gate against (fail on >15% regression)")
	cpuProf   = flag.String("cpuprofile", "", "profile: write a pprof CPU profile here")
	memProf   = flag.String("memprofile", "", "profile: write a pprof heap profile here")
	chSeed    = flag.Uint64("chaos-seed", 1, "chaos: master seed for the torture schedule")
	chCycles  = flag.Int("chaos-cycles", 3, "chaos: kill/resume cycles before the clean final run")
	chCorrupt = flag.Bool("chaos-corrupt", true, "chaos: flip one checkpoint byte between cycles")
	chDir     = flag.String("chaos-dir", "", "chaos: working directory (default: a fresh temp dir)")
	benchMin  = flag.Float64("bench-min-speedup", 0, "bench: fail below this parallel speedup on multi-core (0 = no floor)")
	addr      = flag.String("addr", ":8077", "serve: listen address")
	queueDep  = flag.Int("queue-depth", 8, "serve: per-tenant pending-job bound before 429s")
	maxTen    = flag.Int("max-tenants", 64, "serve: distinct-tenant bound")
	drainTO   = flag.Duration("drain-timeout", 30*time.Second, "serve: in-flight grace on shutdown before force-cancel")
	journalF  = flag.String("journal", "", "serve: write-ahead job journal path for crash recovery and idempotent submission (\"\" = off)")
	recoverF  = flag.Bool("recover", true, "serve: with -journal, re-run jobs interrupted by a crash (false = fail them typed)")
	metricsF  = flag.String("metrics-out", "", "write the metric registry (Prometheus text) here at exit")
	traceF    = flag.String("trace-out", "", "record spans and write Chrome trace-event JSON here at exit")
	pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this side listener (e.g. localhost:6060)")
	noMetrics = flag.Bool("no-metrics", false, "disable the sampled metric flushes (obs A/B runs)")
)

// app binds one evaluation's knobs to its outputs. Tests construct it
// directly; main builds it from the flags.
type app struct {
	ev          campaign.Eval
	csv         bool
	svgPath     string
	resume      bool
	workers     int
	retryBudget int
	runner      *sim.Runner
	stdout      io.Writer
	stderr      io.Writer // nil: degraded-run diagnostics are dropped
	progress    io.Writer // nil: no progress events

	// benchMinSpeedup, when > 0, fails `bench` if the parallel run's
	// speedup over the serial run is below it on a multi-core host.
	benchMinSpeedup float64
	// allowSingleCPU lets bench/scale run on a single-CPU host, recording
	// timings with the speedup claim withheld instead of refusing.
	allowSingleCPU bool
}

// sectionNames returns the registry's section names in paper order.
func sectionNames() []string {
	defs := report.Sections()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// runSections executes the named sections as ONE merged campaign —
// every cell of every section schedules in parallel under the shared
// worker bound — then renders each section in order from the result
// set, so the bytes match a serial run exactly.
func (a *app) runSections(ctx context.Context, names []string) error {
	type pending struct {
		def    report.SectionDef
		replay string // non-empty: cached output to replay verbatim
	}
	ck := a.runner.Checkpoint
	var sections []pending
	var specs []campaign.Spec
	for _, name := range names {
		def, ok := report.Section(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		p := pending{def: def}
		if a.resume {
			if text, ok := ck.Output(name); ok {
				p.replay = text
				sections = append(sections, p)
				continue
			}
		}
		specs = append(specs, def.Spec(a.ev))
		sections = append(sections, p)
	}

	merged := campaign.Merge("evaluation", specs...)
	rs, err := campaign.Run(ctx, merged, campaign.Options{
		Workers:     a.workers,
		Runner:      a.runner,
		OnProgress:  a.onProgress(),
		RetryBudget: a.retryBudget,
	})
	if err != nil {
		return err
	}

	rc := &report.Context{Eval: a.ev, Results: rs, CSV: a.csv, SVGPath: a.svgPath}
	var degraded []string
	for i, p := range sections {
		if p.replay != "" {
			if _, err := io.WriteString(a.stdout, p.replay); err != nil {
				return err
			}
		} else {
			skipped, err := a.renderSection(p.def, rc)
			if err != nil {
				return err
			}
			if skipped {
				degraded = append(degraded, p.def.Name)
			}
		}
		if len(sections) > 1 || i < len(sections)-1 {
			fmt.Fprintln(a.stdout)
		}
	}
	if skippedCells := rs.Skipped(); len(skippedCells) > 0 || len(degraded) > 0 {
		// Degraded mode: everything that completed has been rendered; the
		// banner and the non-zero exit report what is missing.
		obs.Emit("degraded-run",
			"skipped_cells", strconv.Itoa(len(skippedCells)),
			"incomplete_sections", strconv.Itoa(len(degraded)))
		obs.Instant("degraded-run", "campaign",
			"skipped_cells", strconv.Itoa(len(skippedCells)))
		if a.stderr != nil {
			fmt.Fprintf(a.stderr, "experiments: DEGRADED RUN: %d cell(s) skipped, %d section(s) incomplete\n",
				len(skippedCells), len(degraded))
			for _, k := range skippedCells {
				fmt.Fprintf(a.stderr, "experiments:   skipped cell %s\n", k)
			}
		}
		return fmt.Errorf("degraded run: %d cell(s) skipped after retries (%d section(s) incomplete; completed sections were rendered)",
			len(skippedCells), len(degraded))
	}
	return nil
}

// renderSection renders one section with output-level checkpointing:
// when a checkpoint is armed the rendered bytes are stored, and a later
// -resume replays them verbatim — byte-identical tables without
// recomputation. Failed sections are not cached; their cells still are,
// via the campaign's checkpoint, so the retry is cheap.
//
// A section whose cells were parked by the campaign's circuit breaker
// (campaign.ErrCellSkipped) renders as a one-line placeholder and
// reports skipped=true instead of failing, so one bad section degrades
// the report rather than truncating it.
func (a *app) renderSection(def report.SectionDef, rc *report.Context) (skipped bool, err error) {
	var buf bytes.Buffer
	if err := def.Render(&buf, rc); err != nil {
		if errors.Is(err, campaign.ErrCellSkipped) {
			fmt.Fprintf(a.stdout, "[section %s skipped: its cells exhausted the campaign retry budget]\n", def.Name)
			return true, nil
		}
		return false, err
	}
	if _, err := a.stdout.Write(buf.Bytes()); err != nil {
		return false, err
	}
	if ck := a.runner.Checkpoint; ck != nil {
		return false, ck.PutOutput(def.Name, buf.String())
	}
	return false, nil
}

// onProgress returns the campaign progress sink (nil when -progress is
// off). Events go to a side channel, never stdout, so the rendered
// tables stay byte-identical with and without it.
func (a *app) onProgress() func(campaign.Progress) {
	if a.progress == nil {
		return nil
	}
	w := a.progress
	return func(p campaign.Progress) {
		if p.Cell == "" && p.Note != "" {
			// Checkpoint-load report: quarantine, salvage, migration.
			fmt.Fprintf(w, "campaign: checkpoint: %s\n", p.Note)
			return
		}
		state := ""
		if p.Cached {
			state = " (cached)"
		}
		if p.Err != nil {
			state = " (failed: " + p.Err.Error() + ")"
		}
		if p.Skipped {
			state = fmt.Sprintf(" (SKIPPED after %d attempts: %v)", p.Attempts, p.Err)
		} else if p.Attempts > 1 {
			state += fmt.Sprintf(" (attempt %d)", p.Attempts)
		}
		eta := ""
		if p.ETA > 0 {
			eta = fmt.Sprintf(" eta %s", p.ETA.Round(time.Second))
		}
		fmt.Fprintf(w, "campaign: [%d/%d] %s %s%s%s\n",
			p.Done, p.Total, p.Cell, p.CellElapsed.Round(time.Millisecond), state, eta)
	}
}

// chaos runs the crash-consistency torture harness (internal/chaostest)
// and prints its report: a real campaign executed against a
// fault-injecting filesystem, killed at randomized checkpoint-flush
// boundaries, corrupted between cycles, resumed, and finally verified
// byte-for-byte against an undisturbed run.
func (a *app) chaos(ctx context.Context, cfg chaostest.Config) error {
	rep, err := chaostest.Run(ctx, cfg)
	fmt.Fprintf(a.stdout, "chaos: seed %#x: %d cycle(s), %d kill(s), %d corruption(s), %d injected fault(s) (%d torn, %d short, %d io, %d nospace, %d rename, %d fsync-loss, %d bitflip), %d quarantined file(s)\n",
		cfg.Seed, rep.Cycles, rep.Kills, rep.Corruptions,
		rep.Faults.Total(), rep.Faults.TornWrites, rep.Faults.ShortWrites,
		rep.Faults.WriteErrs, rep.Faults.NoSpaceErrs, rep.Faults.RenameFails,
		rep.Faults.FsyncLosses, rep.Faults.BitFlips, rep.Quarantined)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "chaos: final report byte-identical to the undisturbed run (%d bytes)\n", rep.GoldenBytes)
	return nil
}

// benchReport is the JSON document `experiments bench` writes: the
// wall-clock of the full evaluation at one worker versus N, and whether
// the outputs matched byte for byte.
type benchReport struct {
	Sections        int     `json:"sections"`
	Cells           int     `json:"cells"`
	Seeds           int     `json:"seeds"`
	Windows         int     `json:"windows"`
	Trials          int     `json:"trials"`
	CPUs            int     `json:"cpus"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	BatchSize       int     `json:"batch_size"`
	Shards          int     `json:"shards"`
	WorkersParallel int     `json:"workers_parallel"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
	// SpeedupClaimed is false when the timings were taken on a
	// single-CPU host: the numbers are recorded for completeness but a
	// parallel-scaling claim cannot be substantiated without cores to
	// overlap work on. Gating consumers must check this, not Speedup.
	SpeedupClaimed bool `json:"speedup_claimed"`
	// Scale is `experiments scale`'s section: full-DIMM sparse-state
	// footprint plus the multi-worker sweep timings.
	Scale *scaleSection `json:"scale,omitempty"`
}

// scaleSection is what `experiments scale` folds into the campaign
// benchmark report.
type scaleSection struct {
	sim.ScaleSmokeReport
	CPUs            int     `json:"cpus"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	SweepSeeds      int     `json:"sweep_seeds"`
	WorkersParallel int     `json:"workers_parallel"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
	SpeedupClaimed  bool    `json:"speedup_claimed"`
}

// loadBenchReport reads an existing report at path so bench and scale
// can each update their own fields without clobbering the other's. A
// missing or unparseable file starts fresh.
func loadBenchReport(path string) benchReport {
	var rep benchReport
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &rep)
	}
	return rep
}

// writeBenchReport writes the report as indented JSON.
func writeBenchReport(path string, rep benchReport) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// bench runs the whole evaluation twice — serial and parallel — with no
// checkpoint (so both runs really compute), verifies the outputs are
// byte-identical, and writes the timing report.
func (a *app) bench(ctx context.Context, path string) error {
	names := sectionNames()
	par := a.workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	single := runtime.NumCPU() == 1
	if single {
		// A single-CPU host cannot overlap work, so any speedup number it
		// produces is noise. Refuse to record one silently: the operator
		// must opt in, and the report then carries speedup_claimed=false.
		if !a.allowSingleCPU {
			return fmt.Errorf("bench: single-CPU host cannot substantiate a parallel speedup claim; rerun on >= 2 CPUs or pass -allow-single-cpu to record timings with speedup_claimed=false")
		}
		fmt.Fprintln(os.Stderr,
			"experiments: bench on a single-CPU host: the parallel run cannot overlap work; recording speedup_claimed=false")
	}
	run := func(workers int) (string, time.Duration, error) {
		var buf bytes.Buffer
		b := *a
		b.stdout = &buf
		b.workers = workers
		b.runner = &sim.Runner{Config: a.runner.Config} // no checkpoint
		b.resume = false
		start := time.Now()
		err := b.runSections(ctx, names)
		return buf.String(), time.Since(start), err
	}
	serialOut, serialDur, err := run(1)
	if err != nil {
		return err
	}
	parOut, parDur, err := run(par)
	if err != nil {
		return err
	}

	var specs []campaign.Spec
	for _, name := range names {
		def, _ := report.Section(name)
		specs = append(specs, def.Spec(a.ev))
	}
	rep := benchReport{
		Sections:        len(names),
		Cells:           len(campaign.Merge("evaluation", specs...).Cells),
		Seeds:           a.ev.SeedsPerPoint,
		Windows:         a.ev.Base.Windows,
		Trials:          a.ev.Trials,
		CPUs:            runtime.NumCPU(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		BatchSize:       memctrl.DefaultBatchSize,
		Shards:          a.runner.Config.Shards,
		WorkersParallel: par,
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parDur.Seconds(),
		Speedup:         serialDur.Seconds() / parDur.Seconds(),
		Identical:       serialOut == parOut,
		SpeedupClaimed:  !single,
		Scale:           loadBenchReport(path).Scale, // keep `scale`'s section
	}
	if err := writeBenchReport(path, rep); err != nil {
		return err
	}
	// The CPU count leads the summary: a speedup number is meaningless
	// without knowing how many cores were available to produce it.
	fmt.Fprintf(a.stdout, "bench: cpus=%d gomaxprocs=%d\n", rep.CPUs, rep.GoMaxProcs)
	fmt.Fprintf(a.stdout, "bench: %d cells, serial %.1fs, parallel(%d) %.1fs, speedup %.2fx, identical %v — wrote %s\n",
		rep.Cells, rep.SerialSeconds, par, rep.ParallelSeconds, rep.Speedup, rep.Identical, path)
	if !rep.Identical {
		return fmt.Errorf("bench: serial and parallel outputs differ")
	}
	if a.benchMinSpeedup > 0 && rep.CPUs > 1 && rep.Speedup < a.benchMinSpeedup {
		return fmt.Errorf("bench: parallel speedup %.2fx on %d CPUs is below the -bench-min-speedup floor %.2f — the worker pool is not overlapping work",
			rep.Speedup, rep.CPUs, a.benchMinSpeedup)
	}
	return nil
}

// scale is the scale-out gate: simulate a full-DIMM geometry and assert
// the sparse-state memory bounds, then time a multi-worker seed sweep
// serial versus parallel with a byte-identity check, and fold both
// measurements into the campaign benchmark report at path. Like bench,
// it refuses to produce a speedup number on a single-CPU host unless
// -allow-single-cpu marks the claim withheld.
func (a *app) scale(ctx context.Context, path string, p dram.Params) error {
	single := runtime.NumCPU() == 1
	if single && !a.allowSingleCPU {
		return fmt.Errorf("scale: single-CPU host cannot substantiate a parallel speedup claim; rerun on >= 2 CPUs or pass -allow-single-cpu to record timings with speedup_claimed=false")
	}

	smoke, err := sim.ScaleSmoke(ctx, sim.ScaleSmokeConfig(p), "PARA")
	if err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "scale: geometry %s: %d banks, %d rows, sparse=%v\n",
		smoke.Geometry, smoke.TotalBanks, smoke.TotalRows, smoke.Sparse)
	fmt.Fprintf(a.stdout, "scale: touched %d/%d rows, state %d B vs dense %d B (%.1fx smaller), live heap +%d B, %d acts in %.2fs\n",
		smoke.TouchedRows, smoke.TotalRows, smoke.StateBytes, smoke.DenseBytes,
		float64(smoke.DenseBytes)/float64(smoke.StateBytes), smoke.HeapGrowth,
		smoke.TotalActs, smoke.Seconds)
	if err := smoke.Check(); err != nil {
		return err
	}
	fmt.Fprintln(a.stdout, "scale: memory gate passed (state <= dense/8, heap growth <= dense/2)")

	// Multi-worker sweep: the same seeds through the runner at one worker
	// and at N, compared for byte-identical summaries. The sweep uses the
	// evaluation's base config (seed-scale device), not the full DIMM —
	// the campaign's unit of parallelism is the seed, and the point is
	// worker-pool scaling, not device size.
	par := a.workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	cfg := a.ev.Base
	seeds := sim.Seeds(1, 4*par)
	sweep := func(workers int) ([]byte, time.Duration, error) {
		r := sim.NewRunner()
		r.Config = a.runner.Config
		r.Config.Workers = workers
		start := time.Now()
		sum, runErrs, err := r.RunSeeds(ctx, cfg, "PARA", seeds)
		if err != nil {
			return nil, 0, err
		}
		if len(runErrs) != 0 {
			return nil, 0, fmt.Errorf("scale: sweep at %d worker(s): %d seed(s) failed: %v", workers, len(runErrs), runErrs[0])
		}
		dur := time.Since(start)
		raw, err := json.Marshal(sum)
		return raw, dur, err
	}
	serialSum, serialDur, err := sweep(1)
	if err != nil {
		return err
	}
	parSum, parDur, err := sweep(par)
	if err != nil {
		return err
	}

	sec := &scaleSection{
		ScaleSmokeReport: smoke,
		CPUs:             runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		SweepSeeds:       len(seeds),
		WorkersParallel:  par,
		SerialSeconds:    serialDur.Seconds(),
		ParallelSeconds:  parDur.Seconds(),
		Speedup:          serialDur.Seconds() / parDur.Seconds(),
		Identical:        bytes.Equal(serialSum, parSum),
		SpeedupClaimed:   !single,
	}
	rep := loadBenchReport(path)
	rep.Scale = sec
	if err := writeBenchReport(path, rep); err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "scale: cpus=%d sweep %d seeds, serial %.1fs, parallel(%d) %.1fs, speedup %.2fx (claimed=%v), identical %v — wrote %s\n",
		sec.CPUs, sec.SweepSeeds, sec.SerialSeconds, par, sec.ParallelSeconds,
		sec.Speedup, sec.SpeedupClaimed, sec.Identical, path)
	if !sec.Identical {
		return fmt.Errorf("scale: serial and parallel sweep summaries differ")
	}
	if a.benchMinSpeedup > 0 && sec.SpeedupClaimed && sec.Speedup < a.benchMinSpeedup {
		return fmt.Errorf("scale: parallel speedup %.2fx on %d CPUs is below the -bench-min-speedup floor %.2f",
			sec.Speedup, sec.CPUs, a.benchMinSpeedup)
	}
	return nil
}

// parseGeometry parses a ranks x groups x banks x rows spec like
// "1x8x4x65536" into device parameters based on the full-DIMM defaults,
// keeping the refresh interval a divisor of the row count.
func parseGeometry(s string) (dram.Params, error) {
	p := dram.FullDIMMParams()
	var ranks, groups, banks, rows int
	if n, err := fmt.Sscanf(s, "%dx%dx%dx%d", &ranks, &groups, &banks, &rows); n != 4 || err != nil {
		return p, fmt.Errorf("geometry %q: want RANKSxGROUPSxBANKSxROWS, e.g. 1x8x4x65536", s)
	}
	p.Ranks, p.BankGroups, p.Banks, p.RowsPerBank = ranks, groups, banks, rows
	if p.RefInt > 0 && rows%p.RefInt != 0 {
		// Keep whole rows-per-interval; an eighth of the rows per window
		// mirrors the default scale's proportions.
		p.RefInt = rows / 8
		if p.RefInt < 1 {
			p.RefInt = 1
		}
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("geometry %q: %w", s, err)
	}
	return p, nil
}

// profile runs the hot-path benchmark harness (internal/hotpath) and
// writes its report to path. It exits with an error when any technique's
// activation path allocates — the regression the harness exists to catch —
// when any pipeline driver disagrees on the Result, when block dispatch
// is a net loss against the reference driver, or (with basePath set) on
// a >15% regression against a committed baseline report. Optional pprof
// captures cover the pipeline measurements (CPU) and the end state
// (heap).
func (a *app) profile(ctx context.Context, path, basePath, cpuPath, memPath string) error {
	if runtime.NumCPU() == 1 {
		fmt.Fprintln(os.Stderr,
			"experiments: profile on a single-CPU host: throughput numbers will be depressed by timer interference")
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep, err := hotpath.BuildReport(ctx)
	if err != nil {
		return err
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	for _, m := range rep.ActPath {
		line := fmt.Sprintf("profile: %-10s %8.1f ns/act  %6.3f allocs/act  %12.0f acts/sec",
			m.Name, m.NsPerAct, m.AllocsPerAct, m.ActsPerSec)
		if m.RefNsPerAct > 0 {
			line += fmt.Sprintf("  (serial-LFSR ref %.1f ns/act, %.1fx)", m.RefNsPerAct, m.Speedup)
		}
		if m.ObsNsPerAct > 0 {
			line += fmt.Sprintf("  (obs on: %.1f ns/act, %+.1f%%)", m.ObsNsPerAct, m.ObsOverheadPct)
		}
		fmt.Fprintln(a.stdout, line)
	}
	for _, p := range rep.Pipeline {
		fmt.Fprintf(a.stdout,
			"profile: pipeline %-10s stages gen %5.1f + service %5.1f = %5.1f ns/access (ref %5.1f)  ref %10.0f acts/sec  block %10.0f acts/sec  %.2fx  match=%v\n",
			p.Technique, p.GenNsPerAccess, p.ServiceNsPerAccess, p.BlockNsPerAccess,
			p.RefNsPerAccess, p.RefActsPerSec, p.BlockActsPerSec, p.BlockSpeedup, p.ResultsMatch)
		for _, sr := range p.Sharded {
			fmt.Fprintf(a.stdout, "profile: pipeline %-10s sharded(%d) %10.0f acts/sec  %.2fx vs block\n",
				p.Technique, sr.Shards, sr.ActsPerSec, sr.Speedup)
		}
	}
	fmt.Fprintf(a.stdout, "profile: wrote %s\n", path)
	if basePath != "" {
		braw, err := os.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("profile: read baseline: %w", err)
		}
		var base hotpath.Report
		if err := json.Unmarshal(braw, &base); err != nil {
			return fmt.Errorf("profile: parse baseline %s: %w", basePath, err)
		}
		if err := hotpath.CheckBaseline(rep, base, 15); err != nil {
			return err
		}
		fmt.Fprintf(a.stdout, "profile: within 15%% of baseline %s\n", basePath)
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	for _, m := range rep.ActPath {
		if m.AllocsPerAct > 0 {
			return fmt.Errorf("profile: %s allocates %.3f objects per activation on the act path, want 0",
				m.Name, m.AllocsPerAct)
		}
	}
	return nil
}

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}

	ev := campaign.DefaultEval()
	ev.Base.Windows = *windows
	if *paper {
		ev.Base.Params = dram.PaperParams()
	}
	if *geomF != "" {
		p, err := parseGeometry(*geomF)
		if err != nil {
			fatal(err)
		}
		ev.Base.Params = p
	}
	ev.SeedsPerPoint = *seeds
	ev.Trials = *trials

	runner := sim.NewRunner()
	runner.Config.Workers = *workers
	runner.Config.Shards = *shardsF
	runner.Config.PerRunTimeout = *timeout
	runner.Config.StallTimeout = *stall
	switch {
	case *ckptPath != "" && *ckptShard > 0:
		ck, err := sim.LoadShardedCheckpoint(*ckptPath, *ckptShard)
		if err != nil {
			fatal(err)
		}
		runner.Checkpoint = ck
	case *ckptPath != "":
		ck, err := sim.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		runner.Checkpoint = ck
	case *ckptShard > 0:
		fatal(fmt.Errorf("-checkpoint-shards requires -checkpoint"))
	case *resume:
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	a := &app{
		ev:              ev,
		csv:             *csvOut,
		svgPath:         *svgOut,
		resume:          *resume,
		workers:         *workers,
		retryBudget:     *retryBudg,
		runner:          runner,
		stdout:          os.Stdout,
		stderr:          os.Stderr,
		benchMinSpeedup: *benchMin,
		allowSingleCPU:  *allow1cpu,
	}
	if *progress {
		a.progress = os.Stderr
		// Structured obs events (retry/breaker/DEGRADED/quarantine
		// transitions) ride the same side channel as progress: stderr,
		// never stdout, so rendered tables stay byte-identical.
		obs.SetEventSink(os.Stderr)
	}
	if *noMetrics {
		obs.SetMetricsEnabled(false)
	}
	if *traceF != "" {
		obs.SetTracer(obs.NewTracer())
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof-addr: %w", err))
		}
		fmt.Fprintf(os.Stderr, "experiments: pprof listening on http://%s/debug/pprof/\n", ln.Addr())
		go http.Serve(ln, nil) // DefaultServeMux carries net/http/pprof
	}

	// Ctrl-C or a supervisor's SIGTERM cancels the campaign (or, for
	// `serve`, triggers the graceful drain); completed cells are already
	// in the checkpoint, so the re-run is cheap.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch cmd {
	case "all":
		err = a.runSections(ctx, sectionNames())
	case "bench":
		err = a.bench(ctx, *benchOut)
	case "scale":
		p := dram.FullDIMMParams()
		if *geomF != "" {
			p = ev.Base.Params
		}
		err = a.scale(ctx, *benchOut, p)
	case "chaos":
		cfg := chaostest.Config{
			Seed:    *chSeed,
			Cycles:  *chCycles,
			Corrupt: *chCorrupt,
			Workers: *workers,
			Dir:     *chDir,
		}
		if *progress {
			cfg.Log = os.Stderr
		}
		err = a.chaos(ctx, cfg)
	case "profile":
		err = a.profile(ctx, *profOut, *perfBase, *cpuProf, *memProf)
	case "serve":
		err = a.serveCmd(ctx, *addr, serve.Config{
			Workers:         *workers,
			QueueDepth:      *queueDep,
			MaxTenants:      *maxTen,
			RetryBudget:     *retryBudg,
			BaseEval:        ev,
			CheckpointPath:  *ckptPath,
			JournalPath:     *journalF,
			DisableRecovery: !*recoverF,
			PerRunTimeout:   *timeout,
			StallTimeout:    *stall,
			DrainTimeout:    *drainTO,
			Log:             os.Stderr,
		})
	case "serve-chaos":
		cfg := servetest.ChaosConfig{
			Seed:    *chSeed,
			Workers: *workers,
			Dir:     *chDir,
		}
		if *progress {
			cfg.Log = os.Stderr
		}
		err = a.serveChaos(ctx, cfg)
	default:
		if _, ok := report.Section(cmd); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
			flag.Usage()
			os.Exit(2)
		}
		err = a.runSections(ctx, []string{cmd})
	}
	// Artifacts are written on every exit path — a DEGRADED or failed run
	// is exactly when the operator wants the flight recorder.
	if oerr := writeObsArtifacts(*metricsF, *traceF); oerr != nil && err == nil {
		err = oerr
	}
	if err != nil {
		fatal(err)
	}
}

// writeObsArtifacts dumps the metric registry and the span trace to
// their -metrics-out / -trace-out paths (empty = skip).
func writeObsArtifacts(metricsPath, tracePath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		werr := obs.Default.WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metrics-out: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote metrics to %s\n", metricsPath)
	}
	if tracePath != "" {
		t := obs.CurrentTracer()
		if t == nil {
			return nil
		}
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		werr := t.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("trace-out: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d trace event(s) to %s (%d dropped) — load in ui.perfetto.dev\n",
			t.Len(), tracePath, t.Dropped())
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV):
//
//	experiments table1           — Table I: simulated system specification
//	experiments table2           — Table II: FSM cycles per act/ref command
//	experiments table3           — Table III: LUTs, vulnerability, overhead, FPR
//	experiments fig4             — Fig. 4: table size vs activation overhead
//	experiments flooding         — §IV: flooding attack, acts to first protection
//	experiments refreshpolicies  — §IV: the four refresh-address policies
//	experiments aggressors       — §IV: 1..20 aggressors per targeted bank
//	experiments ablation         — design-choice sweeps (table sizes, Pbase)
//	experiments extensions       — CAT / TRR / QuaPRoMi, beyond the paper
//	experiments latency          — request latency through the cycle-accurate scheduler
//	experiments thresholds       — flood-survival margins at modern flip thresholds
//	experiments faults           — degradation table: every mitigation under injected faults
//	experiments all              — everything above
//
// Flags:
//
//	-seeds N          seeds per data point (default 5)
//	-windows N        refresh windows per run (default 4)
//	-trials N         flooding trials (default 25)
//	-paper            use the full Table I scale (slow) for the simulations
//	-csv              also print Fig. 4 as CSV
//	-svg PATH         also write Fig. 4 as an SVG file
//	-checkpoint PATH  persist per-seed results (and finished sections) to a
//	                  JSON checkpoint; a killed run re-uses them on restart
//	-resume           with -checkpoint: also replay fully finished sections
//	                  from the checkpoint instead of recomputing them
//	-workers N        bound the seed-sweep worker pool (default GOMAXPROCS)
//	-timeout D        per-run deadline for one simulation (0 = none)
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"tivapromi/internal/dram"
	"tivapromi/internal/faults"
	"tivapromi/internal/fsm"
	"tivapromi/internal/hwmodel"
	"tivapromi/internal/memctrl"
	"tivapromi/internal/mitigation"
	"tivapromi/internal/report"
	"tivapromi/internal/rng"
	"tivapromi/internal/sim"
	"tivapromi/internal/workload"
)

var (
	seeds    = flag.Int("seeds", 5, "seeds per data point")
	windows  = flag.Int("windows", 4, "refresh windows per run")
	trials   = flag.Int("trials", 25, "flooding trials")
	paper    = flag.Bool("paper", false, "full Table I scale (slow)")
	csvOut   = flag.Bool("csv", false, "print Fig. 4 as CSV too")
	svgOut   = flag.String("svg", "", "also write Fig. 4 as an SVG file at this path")
	ckptPath = flag.String("checkpoint", "", "JSON checkpoint path for resumable sweeps")
	resume   = flag.Bool("resume", false, "with -checkpoint: replay finished sections from the checkpoint")
	workers  = flag.Int("workers", 0, "seed-sweep worker pool size (0 = GOMAXPROCS)")
	timeout  = flag.Duration("timeout", 0, "per-run deadline for one simulation (0 = none)")
)

// out is the destination of every section's rendered output. Section
// checkpointing swaps it for a buffer so the exact bytes can be cached
// and replayed.
var out io.Writer = os.Stdout

// runner executes every seed sweep: hardened pool, optional per-run
// deadline, optional checkpoint.
var runner = sim.NewRunner()

// ctx carries Ctrl-C: a canceled run flushes partial results to the
// checkpoint and exits cleanly instead of losing the sweep.
var ctx = context.Background()

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}
	runner.Config.Workers = *workers
	runner.Config.PerRunTimeout = *timeout
	if *ckptPath != "" {
		ck, err := sim.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		runner.Checkpoint = ck
	} else if *resume {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	var stop context.CancelFunc
	ctx, stop = signal.NotifyContext(ctx, os.Interrupt)
	defer stop()

	run := map[string]func() error{
		"table1":          table1,
		"table2":          table2,
		"table3":          table3,
		"fig4":            fig4,
		"flooding":        flooding,
		"refreshpolicies": refreshPolicies,
		"aggressors":      aggressors,
		"ablation":        ablation,
		"extensions":      extensions,
		"latency":         latency,
		"thresholds":      thresholds,
		"faults":          faultsTable,
	}
	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig4",
			"flooding", "refreshpolicies", "aggressors", "ablation", "extensions",
			"latency", "thresholds", "faults"} {
			if err := section(name, run[name]); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := run[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err := section(cmd, fn); err != nil {
		fatal(err)
	}
}

// section runs one experiment with output-level checkpointing: when a
// checkpoint is armed the rendered bytes are captured and stored, and
// with -resume a previously finished section is replayed verbatim —
// byte-identical tables without recomputation. Sections that fail (or
// are interrupted) are not cached; their per-seed results still are, via
// the runner's checkpoint, so the retry is cheap.
func section(name string, fn func() error) error {
	ck := runner.Checkpoint
	if ck == nil {
		return fn()
	}
	if *resume {
		if text, ok := ck.Output(name); ok {
			_, err := io.WriteString(os.Stdout, text)
			return err
		}
	}
	var buf bytes.Buffer
	out = io.MultiWriter(os.Stdout, &buf)
	defer func() { out = os.Stdout }()
	if err := fn(); err != nil {
		return err
	}
	return ck.PutOutput(name, buf.String())
}

// runSeeds is the sections' sweep entry point: hardened pool, checkpoint
// memoization, first failure reported.
func runSeeds(cfg sim.Config, technique string, seeds []uint64) (sim.Summary, error) {
	sum, runErrs, err := runner.RunSeeds(ctx, cfg, technique, seeds)
	if err != nil {
		return sim.Summary{}, err
	}
	if len(runErrs) > 0 {
		return sim.Summary{}, runErrs[0]
	}
	return sum, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// simConfig returns the shared simulation configuration.
func simConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Windows = *windows
	if *paper {
		cfg.Params = dram.PaperParams()
	}
	return cfg
}

// paperTarget describes the full-scale device to mitigation factories for
// storage accounting (table sizes are reported at paper scale no matter
// what scale the simulation ran at).
func paperTarget() mitigation.Target {
	p := dram.PaperParams()
	return mitigation.Target{
		Banks: p.Banks, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
		FlipThreshold: p.FlipThreshold,
	}
}

func tableBytesAtPaperScale(technique string) (int, error) {
	f, err := mitigation.Lookup(technique)
	if err != nil {
		return 0, err
	}
	return f(paperTarget(), 1).TableBytesPerBank(), nil
}

func table1() error {
	p := dram.PaperParams()
	t := report.NewTable("Table I — simulated system specification", "parameter", "value")
	t.Add("Work load", "SPEC-like mixed load (synthetic, see DESIGN.md)")
	t.Add("Number of cores", "4")
	t.Add("L1 / L2 cache size", "64 KB / 256 KB")
	t.Add("DDR4 refresh window", "64 ms")
	t.Add("DDR4 refresh interval", "7.8 us")
	t.Add("DDR4 activation to activation", fmt.Sprintf("%.0f ns", p.TRCNs))
	t.Add("DDR4 refresh time", fmt.Sprintf("%.0f ns", p.TRFCNs))
	t.Add("DDR4 frequency", fmt.Sprintf("%.1f GHz", p.IOFreqGHz))
	t.Add("Refresh intervals per window (RefInt)", fmt.Sprint(p.RefInt))
	t.Add("Rows per bank / per interval", fmt.Sprintf("%d / %d", p.RowsPerBank, p.RowsPerInterval()))
	t.Add("Bit flipping activation threshold", fmt.Sprint(p.FlipThreshold))
	t.Add("Pbase", "2^-23")
	t.Add("RefInt * Pbase", fmt.Sprintf("%.3g", float64(p.RefInt)/float64(1<<23)))
	t.Add("Cycle budget per act / ref", fmt.Sprintf("%d / %d", p.ActCycleBudget(), p.RefCycleBudget()))
	if err := t.Render(out); err != nil {
		return err
	}

	// Measured trace statistics from one unmitigated run at the selected
	// scale, the counterpart of the paper's "175 Million activations /
	// average 40 activations per refresh interval".
	cfg := simConfig()
	r, err := sim.Run(cfg, "")
	if err != nil {
		return err
	}
	m := report.NewTable("Measured trace statistics (this run)", "metric", "value")
	m.Add("Memory activations", fmt.Sprint(r.TotalActs))
	m.Add("Attacker share of activations", fmt.Sprintf("%.0f%%", 100*float64(r.AttackerActs)/float64(r.TotalActs)))
	m.Add("Avg activations per bank-interval", fmt.Sprintf("%.1f", r.AvgActsPerInterval))
	m.Add("Max activations per bank-interval", fmt.Sprint(r.MaxActsPerInterval))
	m.Add("Flips without mitigation", fmt.Sprint(r.Flips))
	return m.Render(out)
}

func table2() error {
	machines := []struct {
		name string
		m    *fsm.Machine
	}{
		{"CaPRoMi", fsm.Fig3("CaPRoMi", fsm.DefaultCounterConfig())},
		{"LoLiPRoMi", fsm.Fig2("LoLiPRoMi", fsm.LinearConfig{HistoryEntries: 32, OverlappedUpdate: true})},
		{"LoPRoMi", fsm.Fig2("LoPRoMi", fsm.LinearConfig{HistoryEntries: 32})},
		{"LiPRoMi", fsm.Fig2("LiPRoMi", fsm.LinearConfig{HistoryEntries: 32})},
	}
	p := dram.PaperParams()
	t := report.NewTable(
		fmt.Sprintf("Table II — FSM cycles per observed command (budgets: act %d, ref %d)",
			p.ActCycleBudget(), p.RefCycleBudget()),
		"command", "CaPRoMi", "LoLiPRoMi", "LoPRoMi", "LiPRoMi")
	rowAct := []string{"act"}
	rowRef := []string{"ref"}
	for _, mc := range machines {
		if err := mc.m.Validate(); err != nil {
			return err
		}
		act, _, err := mc.m.WorstCase("act")
		if err != nil {
			return err
		}
		ref, _, err := mc.m.WorstCase("ref")
		if err != nil {
			return err
		}
		if act > p.ActCycleBudget() || ref > p.RefCycleBudget() {
			return fmt.Errorf("%s violates the DDR4 cycle budget", mc.name)
		}
		rowAct = append(rowAct, fmt.Sprint(act))
		rowRef = append(rowRef, fmt.Sprint(ref))
	}
	t.Add(rowAct...)
	t.Add(rowRef...)
	return t.Render(out)
}

func table3() error {
	cfg := simConfig()
	geo := hwmodel.PaperGeometry()
	model := hwmodel.DefaultCostModel()
	ddr4, ddr3 := hwmodel.DDR4Target(), hwmodel.DDR3Target()
	resources := map[string]hwmodel.Resources{}
	for _, r := range hwmodel.AllResources(geo) {
		resources[r.Name] = r
	}
	paraLUTs := model.Estimate(resources["PARA"], ddr4).LUTs
	paraLUTs3 := model.Estimate(resources["PARA"], ddr3).LUTs

	t := report.NewTable("Table III — comparison with state-of-the-art RH mitigation solutions",
		"technique", "LUTs DDR4 (rel)", "LUTs DDR3 (rel)", "vulnerable",
		"activation overhead", "FPR", "flips")
	vulnParams := dram.PaperParams()
	for _, name := range sim.TechniqueNames() {
		sum, err := runSeeds(cfg, name, sim.Seeds(1000, *seeds))
		if err != nil {
			return err
		}
		vuln, err := sim.AnalyzeVulnerability(name, vulnParams, 7)
		if err != nil {
			return err
		}
		e4 := model.Estimate(resources[name], ddr4)
		e3 := model.Estimate(resources[name], ddr3)
		t.Add(name,
			fmt.Sprintf("%d (%.1fx)", e4.LUTs, float64(e4.LUTs)/float64(paraLUTs)),
			fmt.Sprintf("%d (%.1fx)", e3.LUTs, float64(e3.LUTs)/float64(paraLUTs3)),
			report.YesNo(vuln.Vulnerable),
			report.PctErr(sum.Overhead.Mean(), sum.Overhead.StdDev()),
			report.Pct(sum.FPR.Mean()),
			fmt.Sprint(sum.TotalFlips))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "note: TWiCe and CRA at DDR3 scale exceed any practical controller budget,")
	fmt.Fprintln(out, "      reproducing the paper's conclusion that they cannot target the FPGA.")
	return nil
}

func fig4() error {
	cfg := simConfig()
	s := report.NewScatter("Fig. 4 — table size per bank vs activation overhead (both log scale)",
		"table size per bank [B]", "activation overhead [%]")
	for _, name := range sim.TechniqueNames() {
		sum, err := runSeeds(cfg, name, sim.Seeds(2000, *seeds))
		if err != nil {
			return err
		}
		bytes, err := tableBytesAtPaperScale(name)
		if err != nil {
			return err
		}
		s.Add(name, float64(bytes), sum.Overhead.Mean())
	}
	if err := s.Render(out); err != nil {
		return err
	}
	if *csvOut {
		if err := s.WriteCSV(out); err != nil {
			return err
		}
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.WriteSVG(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgOut)
	}
	return nil
}

func flooding() error {
	p := dram.PaperParams()
	results, err := sim.FloodAll(p, p.MaxActsPerRI, *trials, 7)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Flooding attack — activations until first protection (paper scale, rate %d/interval, %d trials, safe bound %d)",
			p.MaxActsPerRI, *trials, p.FlipThreshold/2),
		"technique", "median acts", "p90 acts", "unprotected trials", "all below safe bound")
	for _, f := range results {
		t.Add(f.Technique,
			fmt.Sprintf("%.0f", f.MedianActs),
			fmt.Sprintf("%.0f", f.P90Acts),
			fmt.Sprint(f.Unprotected),
			report.YesNo(f.AllSafe()))
	}
	return t.Render(out)
}

func refreshPolicies() error {
	cfg := simConfig()
	t := report.NewTable("Refresh-address policies — TiVaPRoMi overhead under the four policies of §IV",
		"technique", "neighbors", "neighbors-remapped", "random", "counter+mask", "max spread", "flips")
	for _, name := range []string{"LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"} {
		row := []string{name}
		lo, hi := -1.0, -1.0
		flips := 0
		for _, pol := range sim.Policies() {
			c := cfg
			c.Policy = pol
			if pol == sim.PolicyRemapped {
				// Spare-row replacement on the device side too.
				c.RemapSwaps = 16
			}
			sum, err := runSeeds(c, name, sim.Seeds(3000, *seeds))
			if err != nil {
				return err
			}
			m := sum.Overhead.Mean()
			row = append(row, report.Pct(m))
			if lo < 0 || m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
			flips += sum.TotalFlips
		}
		row = append(row, fmt.Sprintf("%.1f%%", 100*(hi-lo)/lo), fmt.Sprint(flips))
		t.Add(row...)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "note: TiVaPRoMi's decisions depend only on the observed act/ref stream and")
	fmt.Fprintln(out, "      its fr assumption, so the overhead is identical by construction; the")
	fmt.Fprintln(out, "      meaningful invariance is the flips column staying at zero even when the")
	fmt.Fprintln(out, "      device refreshes in a different order than the mitigation assumes.")
	return nil
}

func aggressors() error {
	cfg := simConfig()
	t := report.NewTable("Aggressor sweep — fixed aggressor count per targeted bank",
		"aggressors", "unmitigated flips", "LoLiPRoMi overhead", "LoLiPRoMi flips",
		"PARA overhead", "PARA flips")
	for _, k := range []int{1, 2, 4, 8, 12, 16, 20} {
		c := cfg
		c.MinAggressors, c.MaxAggressors = k, k
		none, err := runSeeds(c, "", sim.Seeds(4000, *seeds))
		if err != nil {
			return err
		}
		loli, err := runSeeds(c, "LoLiPRoMi", sim.Seeds(4000, *seeds))
		if err != nil {
			return err
		}
		para, err := runSeeds(c, "PARA", sim.Seeds(4000, *seeds))
		if err != nil {
			return err
		}
		t.Add(fmt.Sprint(k),
			fmt.Sprint(none.TotalFlips),
			report.Pct(loli.Overhead.Mean()), fmt.Sprint(loli.TotalFlips),
			report.Pct(para.Overhead.Mean()), fmt.Sprint(para.TotalFlips))
	}
	return t.Render(out)
}

func ablation() error {
	cfg := simConfig()
	seeds := sim.Seeds(5000, *seeds)

	hist, err := sim.AblateHistorySize(cfg, 2, []int{4, 8, 16, 32, 64, 128}, seeds) // LoLiPRoMi
	if err != nil {
		return err
	}
	t := report.NewTable("Ablation — LoLiPRoMi history-table size (paper choice: 32 entries / 120 B)",
		"history table", "bytes/bank", "overhead", "FPR", "flips")
	for _, p := range hist {
		t.Add(p.Label, report.Bytes(p.TableBytes),
			report.PctErr(p.OverheadMean, p.OverheadStd), report.Pct(p.FPRMean),
			fmt.Sprint(p.Flips))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	cnt, err := sim.AblateCounterSize(cfg, []int{16, 32, 64, 128}, seeds)
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — CaPRoMi counter-table size (paper choice: 64 entries)",
		"counter table", "bytes/bank", "overhead", "FPR", "flips")
	for _, p := range cnt {
		t.Add(p.Label, report.Bytes(p.TableBytes),
			report.PctErr(p.OverheadMean, p.OverheadStd), report.Pct(p.FPRMean),
			fmt.Sprint(p.Flips))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)

	pb, err := sim.AblatePbase(cfg, 2, []int{-2, -1, 0, 1, 2}, seeds) // LoLiPRoMi
	if err != nil {
		return err
	}
	t = report.NewTable("Ablation — LoLiPRoMi base probability (paper choice: RefInt*Pbase ≈ 0.001, delta 0)",
		"Pbase scale", "overhead", "FPR", "flips", "flood median (acts)")
	for _, p := range pb {
		t.Add(p.Label, report.PctErr(p.OverheadMean, p.OverheadStd),
			report.Pct(p.FPRMean), fmt.Sprint(p.Flips),
			fmt.Sprintf("%.0f", p.FloodMedian))
	}
	return t.Render(out)
}

func extensions() error {
	cfg := simConfig()
	vulnParams := dram.PaperParams()
	t := report.NewTable(
		"Extensions beyond the paper — CAT (adaptive tree, §II), TRR (commodity in-DRAM sampler), QuaPRoMi (quadratic weighting)",
		"technique", "table/bank", "overhead", "FPR", "flips",
		"flood survival", "decoy ratio", "saturation ratio", "vulnerable")
	names := append(sim.ExtensionTechniques(), "LoLiPRoMi")
	for _, name := range names {
		sum, err := runSeeds(cfg, name, sim.Seeds(6000, *seeds))
		if err != nil {
			return err
		}
		rep, err := sim.AnalyzeExtension(name, vulnParams, 7)
		if err != nil {
			return err
		}
		bytes, err := tableBytesAtPaperScale(name)
		if err != nil {
			return err
		}
		t.Add(name, report.Bytes(bytes),
			report.PctErr(sum.Overhead.Mean(), sum.Overhead.StdDev()),
			report.Pct(sum.FPR.Mean()), fmt.Sprint(sum.TotalFlips),
			fmt.Sprintf("%.2e", rep.FloodSurvival),
			fmt.Sprintf("%.2f", rep.DecoyRatio),
			fmt.Sprintf("%.2f", rep.SaturationRatio),
			report.YesNo(rep.Vulnerable))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "findings: CAT collapses when the attacker fills the tree before hammering")
	fmt.Fprintln(out, "          (the paper's §II critique, measured); QuaPRoMi's late quadratic ramp")
	fmt.Fprintln(out, "          saves activations but leaves a 61% flood-survival hole — why the")
	fmt.Fprintln(out, "          paper stops at logarithmic/linear; TRR degrades ~2x under hotter")
	fmt.Fprintln(out, "          decoy rows (the TRRespass direction).")
	return nil
}

// latency runs the cycle-accurate scheduler under the attack workload for
// each technique and reports the request-latency cost of the extra
// maintenance commands — the performance view behind the paper's
// "activation overhead" metric.
func latency() error {
	cfg := simConfig()
	p := cfg.Params
	t := report.NewTable(
		"Request latency under attack (cycle-accurate FR-FCFS scheduler, one window)",
		"technique", "avg latency (cycles)", "max latency", "row-hit rate", "extra activations")
	for _, name := range append([]string{""}, sim.TechniqueNames()...) {
		dev, err := dram.New(p, nil)
		if err != nil {
			return err
		}
		var mit mitigation.Mitigator
		label := "none"
		if name != "" {
			f, err := mitigation.Lookup(name)
			if err != nil {
				return err
			}
			mit = f(mitigation.Target{
				Banks: p.Banks, RowsPerBank: p.RowsPerBank, RefInt: p.RefInt,
				FlipThreshold: p.FlipThreshold,
			}, 1)
			label = name
		}
		sched, err := memctrl.NewScheduler(memctrl.DDR42400(), dev, mit, 32)
		if err != nil {
			return err
		}
		st, err := newLatencyStream(cfg)
		if err != nil {
			return err
		}
		sched.RunIntervals(p.RefInt, st)
		stats := sched.Stats()
		ds := dev.Stats()
		t.Add(label,
			fmt.Sprintf("%.1f", stats.AvgLatency()),
			fmt.Sprint(stats.LatencyMax),
			fmt.Sprintf("%.1f%%", 100*float64(stats.RowHits())/float64(stats.Served)),
			fmt.Sprint(ds.NeighborActs+ds.DirectRefreshes))
	}
	return t.Render(out)
}

// newLatencyStream builds the same mixed traffic Run uses, as a scheduler
// feed.
func newLatencyStream(cfg sim.Config) (func() (int, int, bool), error) {
	c := cfg
	c.Windows = 1
	mix := workload.SPECMix(c.Params.Banks, c.Params.RowsPerBank, c.Seed)
	att, err := workload.NewAttacker(workload.DefaultAttackerConfig(
		c.AttackBanks, c.Params.RowsPerBank,
		uint64(c.Params.RefInt)*200, c.Seed))
	if err != nil {
		return nil, err
	}
	src := rng.NewXorShift64Star(c.Seed ^ 0x1a7e)
	share := uint64(c.AttackShare * float64(1<<32))
	return func() (int, int, bool) {
		if src.Uint64()&0xffffffff < share {
			a := att.Next()
			return a.Bank, a.Row, a.Write
		}
		a := mix.Next()
		return a.Bank, a.Row, a.Write
	}, nil
}

// thresholds sweeps the flip threshold below the paper's 139 K (modern
// devices flip far earlier) and reports each technique's flood-survival
// margin, keeping the paper's Pbase for the probabilistic techniques and
// re-provisioning the counters.
func thresholds() error {
	p := dram.PaperParams()
	ths := []uint32{139000, 70000, 35000, 10000}
	pts := sim.ThresholdSweep(p, ths)
	t := report.NewTable(
		"Flip-threshold sweep — weight-aware flood survival (paper Pbase; counters re-provisioned)",
		"technique", "139K (paper)", "70K", "35K", "10K")
	bySurv := map[string]map[uint32]sim.ThresholdPoint{}
	for _, pt := range pts {
		if bySurv[pt.Technique] == nil {
			bySurv[pt.Technique] = map[uint32]sim.ThresholdPoint{}
		}
		bySurv[pt.Technique][pt.Threshold] = pt
	}
	cell := func(pt sim.ThresholdPoint) string {
		mark := ""
		if !pt.Safe {
			mark = " (!)"
		}
		return fmt.Sprintf("%.1e%s", pt.Survival, mark)
	}
	for _, name := range sim.TechniqueNames() {
		row := []string{name}
		for _, th := range ths {
			row = append(row, cell(bySurv[name][th]))
		}
		t.Add(row...)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "(!) marks survival above the Table III vulnerability limit: with the paper's")
	fmt.Fprintln(out, "    Pbase, every probabilistic technique — including TiVaPRoMi — needs")
	fmt.Fprintln(out, "    re-tuning below ≈70K-flip DRAM, while counter designs only re-provision.")
	return nil
}

// faultsTable renders the degradation table: every mitigation of Table
// III driven through the fault-injection framework, across the fault
// models of internal/faults at three rates each. The healthy baseline
// (model "none") heads each technique's block. Deterministic for a fixed
// -seeds/-windows selection: equal invocations print equal tables.
func faultsTable() error {
	cfg := simConfig()
	sc := sim.FaultSweepConfig{
		Base:       cfg,
		Techniques: []string{"PARA", "TWiCe", "CRA", "CaPRoMi", "LoLiPRoMi"},
		Models:     append([]faults.Model{faults.None}, faults.Models()...),
		Rates:      []float64{1e-4, 1e-3, 1e-2},
		Seeds:      sim.Seeds(8000, *seeds),
		FaultSeed:  0xfa0175,
	}
	pts, err := sim.FaultSweep(ctx, runner, sc)
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Graceful degradation — mitigations under injected hardware faults (mean per run)",
		"technique", "fault model", "rate", "flips", "overhead", "FPR",
		"injected", "dropped", "delayed", "errors")
	for _, p := range pts {
		rate := fmt.Sprintf("%.0e", p.Rate)
		if p.Model == faults.None {
			rate = "-"
		}
		t.Add(p.Technique, p.Model.String(),
			rate,
			fmt.Sprintf("%.1f", p.Flips),
			fmt.Sprintf("%.3f%%", p.OverheadPct),
			fmt.Sprintf("%.3f%%", p.FPRPct),
			fmt.Sprintf("%.1f", p.Injected),
			fmt.Sprintf("%.1f", p.Dropped),
			fmt.Sprintf("%.1f", p.Delayed),
			fmt.Sprint(p.Errors))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out, "reading: stuck-rng is the Loaded Dice non-selection case (probabilistic")
	fmt.Fprintln(out, "         protection silently stops; counters are immune); drop/delay-actn is")
	fmt.Fprintln(out, "         the QPRAC imperfect-service case; state-seu models SRAM upsets in")
	fmt.Fprintln(out, "         the mitigation tables; weak-cells lowers the effective threshold")
	fmt.Fprintln(out, "         under every technique equally.")
	return nil
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (Section IV):
//
//	experiments table1           — Table I: simulated system specification
//	experiments table2           — Table II: FSM cycles per act/ref command
//	experiments table3           — Table III: LUTs, vulnerability, overhead, FPR
//	experiments fig4             — Fig. 4: table size vs activation overhead
//	experiments flooding         — §IV: flooding attack, acts to first protection
//	experiments refreshpolicies  — §IV: the four refresh-address policies
//	experiments aggressors       — §IV: 1..20 aggressors per targeted bank
//	experiments ablation         — design-choice sweeps (table sizes, Pbase)
//	experiments extensions       — CAT / TRR / QuaPRoMi, beyond the paper
//	experiments latency          — request latency through the cycle-accurate scheduler
//	experiments thresholds       — flood-survival margins at modern flip thresholds
//	experiments faults           — degradation table: every mitigation under injected faults
//	experiments all              — everything above, as one merged campaign
//	experiments bench            — run `all` at -workers 1 and -workers N,
//	                               verify byte-identical output, write timings
//
// Every section is a campaign.Spec in the report.Sections registry; this
// command only merges the selected specs, runs them through the campaign
// scheduler (all sections' cells in parallel under one worker bound) and
// renders the results in section order — so the output is byte-identical
// whatever -workers says.
//
// Flags:
//
//	-seeds N          seeds per data point (default 5)
//	-windows N        refresh windows per run (default 4)
//	-trials N         flooding trials (default 25)
//	-paper            use the full Table I scale (slow) for the simulations
//	-csv              also print Fig. 4 as CSV
//	-svg PATH         also write Fig. 4 as an SVG file
//	-checkpoint PATH  persist per-seed and per-probe results (and finished
//	                  sections) to a JSON checkpoint; a killed run re-uses
//	                  them on restart
//	-resume           with -checkpoint: also replay fully finished sections
//	                  from the checkpoint instead of recomputing them
//	-workers N        bound the campaign's concurrent simulations (default
//	                  GOMAXPROCS)
//	-timeout D        per-run deadline for one simulation (0 = none)
//	-progress         stream per-cell progress and ETA to stderr
//	-bench-out PATH   where `bench` writes its JSON report (default
//	                  BENCH_campaign.json)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/dram"
	"tivapromi/internal/report"
	"tivapromi/internal/sim"
)

var (
	seeds    = flag.Int("seeds", 5, "seeds per data point")
	windows  = flag.Int("windows", 4, "refresh windows per run")
	trials   = flag.Int("trials", 25, "flooding trials")
	paper    = flag.Bool("paper", false, "full Table I scale (slow)")
	csvOut   = flag.Bool("csv", false, "print Fig. 4 as CSV too")
	svgOut   = flag.String("svg", "", "also write Fig. 4 as an SVG file at this path")
	ckptPath = flag.String("checkpoint", "", "JSON checkpoint path for resumable campaigns")
	resume   = flag.Bool("resume", false, "with -checkpoint: replay finished sections from the checkpoint")
	workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	timeout  = flag.Duration("timeout", 0, "per-run deadline for one simulation (0 = none)")
	progress = flag.Bool("progress", false, "stream per-cell progress to stderr")
	benchOut = flag.String("bench-out", "BENCH_campaign.json", "bench: JSON report path")
)

// app binds one evaluation's knobs to its outputs. Tests construct it
// directly; main builds it from the flags.
type app struct {
	ev       campaign.Eval
	csv      bool
	svgPath  string
	resume   bool
	workers  int
	runner   *sim.Runner
	stdout   io.Writer
	progress io.Writer // nil: no progress events
}

// sectionNames returns the registry's section names in paper order.
func sectionNames() []string {
	defs := report.Sections()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// runSections executes the named sections as ONE merged campaign —
// every cell of every section schedules in parallel under the shared
// worker bound — then renders each section in order from the result
// set, so the bytes match a serial run exactly.
func (a *app) runSections(ctx context.Context, names []string) error {
	type pending struct {
		def    report.SectionDef
		replay string // non-empty: cached output to replay verbatim
	}
	ck := a.runner.Checkpoint
	var sections []pending
	var specs []campaign.Spec
	for _, name := range names {
		def, ok := report.Section(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		p := pending{def: def}
		if a.resume {
			if text, ok := ck.Output(name); ok {
				p.replay = text
				sections = append(sections, p)
				continue
			}
		}
		specs = append(specs, def.Spec(a.ev))
		sections = append(sections, p)
	}

	merged := campaign.Merge("evaluation", specs...)
	rs, err := campaign.Run(ctx, merged, campaign.Options{
		Workers:    a.workers,
		Runner:     a.runner,
		OnProgress: a.onProgress(),
	})
	if err != nil {
		return err
	}

	rc := &report.Context{Eval: a.ev, Results: rs, CSV: a.csv, SVGPath: a.svgPath}
	for i, p := range sections {
		if p.replay != "" {
			if _, err := io.WriteString(a.stdout, p.replay); err != nil {
				return err
			}
		} else if err := a.renderSection(p.def, rc); err != nil {
			return err
		}
		if len(sections) > 1 || i < len(sections)-1 {
			fmt.Fprintln(a.stdout)
		}
	}
	return nil
}

// renderSection renders one section with output-level checkpointing:
// when a checkpoint is armed the rendered bytes are stored, and a later
// -resume replays them verbatim — byte-identical tables without
// recomputation. Failed sections are not cached; their cells still are,
// via the campaign's checkpoint, so the retry is cheap.
func (a *app) renderSection(def report.SectionDef, rc *report.Context) error {
	ck := a.runner.Checkpoint
	if ck == nil {
		return def.Render(a.stdout, rc)
	}
	var buf bytes.Buffer
	if err := def.Render(io.MultiWriter(a.stdout, &buf), rc); err != nil {
		return err
	}
	return ck.PutOutput(def.Name, buf.String())
}

// onProgress returns the campaign progress sink (nil when -progress is
// off). Events go to a side channel, never stdout, so the rendered
// tables stay byte-identical with and without it.
func (a *app) onProgress() func(campaign.Progress) {
	if a.progress == nil {
		return nil
	}
	w := a.progress
	return func(p campaign.Progress) {
		state := ""
		if p.Cached {
			state = " (cached)"
		}
		if p.Err != nil {
			state = " (failed: " + p.Err.Error() + ")"
		}
		eta := ""
		if p.ETA > 0 {
			eta = fmt.Sprintf(" eta %s", p.ETA.Round(time.Second))
		}
		fmt.Fprintf(w, "campaign: [%d/%d] %s %s%s%s\n",
			p.Done, p.Total, p.Cell, p.CellElapsed.Round(time.Millisecond), state, eta)
	}
}

// benchReport is the JSON document `experiments bench` writes: the
// wall-clock of the full evaluation at one worker versus N, and whether
// the outputs matched byte for byte.
type benchReport struct {
	Sections        int     `json:"sections"`
	Cells           int     `json:"cells"`
	Seeds           int     `json:"seeds"`
	Windows         int     `json:"windows"`
	Trials          int     `json:"trials"`
	CPUs            int     `json:"cpus"`
	WorkersParallel int     `json:"workers_parallel"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	Identical       bool    `json:"identical"`
}

// bench runs the whole evaluation twice — serial and parallel — with no
// checkpoint (so both runs really compute), verifies the outputs are
// byte-identical, and writes the timing report.
func (a *app) bench(ctx context.Context, path string) error {
	names := sectionNames()
	par := a.workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	run := func(workers int) (string, time.Duration, error) {
		var buf bytes.Buffer
		b := *a
		b.stdout = &buf
		b.workers = workers
		b.runner = &sim.Runner{Config: a.runner.Config} // no checkpoint
		b.resume = false
		start := time.Now()
		err := b.runSections(ctx, names)
		return buf.String(), time.Since(start), err
	}
	serialOut, serialDur, err := run(1)
	if err != nil {
		return err
	}
	parOut, parDur, err := run(par)
	if err != nil {
		return err
	}

	var specs []campaign.Spec
	for _, name := range names {
		def, _ := report.Section(name)
		specs = append(specs, def.Spec(a.ev))
	}
	rep := benchReport{
		Sections:        len(names),
		Cells:           len(campaign.Merge("evaluation", specs...).Cells),
		Seeds:           a.ev.SeedsPerPoint,
		Windows:         a.ev.Base.Windows,
		Trials:          a.ev.Trials,
		CPUs:            runtime.NumCPU(),
		WorkersParallel: par,
		SerialSeconds:   serialDur.Seconds(),
		ParallelSeconds: parDur.Seconds(),
		Speedup:         serialDur.Seconds() / parDur.Seconds(),
		Identical:       serialOut == parOut,
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "bench: %d cells, serial %.1fs, parallel(%d) %.1fs, speedup %.2fx, identical %v — wrote %s\n",
		rep.Cells, rep.SerialSeconds, par, rep.ParallelSeconds, rep.Speedup, rep.Identical, path)
	if !rep.Identical {
		return fmt.Errorf("bench: serial and parallel outputs differ")
	}
	return nil
}

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}

	ev := campaign.DefaultEval()
	ev.Base.Windows = *windows
	if *paper {
		ev.Base.Params = dram.PaperParams()
	}
	ev.SeedsPerPoint = *seeds
	ev.Trials = *trials

	runner := sim.NewRunner()
	runner.Config.Workers = *workers
	runner.Config.PerRunTimeout = *timeout
	if *ckptPath != "" {
		ck, err := sim.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		runner.Checkpoint = ck
	} else if *resume {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}

	a := &app{
		ev:      ev,
		csv:     *csvOut,
		svgPath: *svgOut,
		resume:  *resume,
		workers: *workers,
		runner:  runner,
		stdout:  os.Stdout,
	}
	if *progress {
		a.progress = os.Stderr
	}

	// Ctrl-C cancels the campaign; completed cells are already in the
	// checkpoint, so the re-run is cheap.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch cmd {
	case "all":
		err = a.runSections(ctx, sectionNames())
	case "bench":
		err = a.bench(ctx, *benchOut)
	default:
		if _, ok := report.Section(cmd); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
			flag.Usage()
			os.Exit(2)
		}
		err = a.runSections(ctx, []string{cmd})
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

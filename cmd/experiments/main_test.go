package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tivapromi/internal/campaign"
	"tivapromi/internal/dram"
	"tivapromi/internal/sim"
)

// testEval shrinks the evaluation so the full `all` pipeline runs in
// seconds: one seed, one window, and — crucially — the security probes
// at the scaled device instead of the paper's full Table I scale.
func testEval() campaign.Eval {
	ev := campaign.DefaultEval()
	ev.SeedsPerPoint = 1
	ev.Base.Windows = 1
	ev.Trials = 2
	// Quarter the scaled device again: the pipeline's structure is what
	// is under test here, not the physics.
	p := dram.ScaledParams()
	p.RowsPerBank /= 4
	p.RefInt /= 4
	p.FlipThreshold /= 4
	ev.Base.Params = p
	ev.Probe = p
	ev.Thresholds = []uint32{p.FlipThreshold, p.FlipThreshold / 2}
	return ev
}

func newTestApp(ev campaign.Eval, workers int) (*app, *bytes.Buffer) {
	var buf bytes.Buffer
	return &app{
		ev:      ev,
		workers: workers,
		runner:  sim.NewRunner(),
		stdout:  &buf,
	}, &buf
}

// TestAllByteIdenticalAcrossWorkers is the golden guarantee of the
// campaign engine: `experiments all` emits the same bytes at one worker
// and at eight, because rendering happens after execution in registry
// order.
func TestAllByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation pipeline; skipped in -short")
	}
	ev := testEval()
	run := func(workers int) string {
		a, buf := newTestApp(ev, workers)
		if err := a.runSections(context.Background(), sectionNames()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("output differs between -workers 1 and -workers 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			firstDiff(serial, parallel), firstDiff(parallel, serial))
	}
	for _, name := range sectionNames() {
		if name == "table1" || name == "fig4" {
			continue // these sections' titles don't contain their registry name
		}
		if !strings.Contains(strings.ToLower(serial), name[:4]) {
			t.Errorf("output seems to be missing section %q", name)
		}
	}
}

// TestAllByteIdenticalAcrossShards pins the other parallelism axis: the
// bank-sharded driver (-shards) must leave every rendered table
// byte-identical, because each lane's evolution is independent of how
// lanes are scheduled across goroutines.
func TestAllByteIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation pipeline; skipped in -short")
	}
	ev := testEval()
	run := func(shards int) string {
		a, buf := newTestApp(ev, 2)
		a.runner.Config.Shards = shards
		if err := a.runSections(context.Background(), sectionNames()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(0)
	sharded := run(2)
	if serial != sharded {
		t.Fatalf("output differs between -shards 0 and -shards 2:\n--- serial ---\n%s\n--- sharded ---\n%s",
			firstDiff(serial, sharded), firstDiff(sharded, serial))
	}
}

// TestKilledCampaignResumesByteIdentical kills a checkpointed run
// mid-campaign (context cancellation, the in-process equivalent of
// SIGINT) and checks that the resumed run completes from the checkpoint
// and reproduces a from-scratch run byte for byte — then that a second
// -resume invocation replays the cached sections verbatim.
func TestKilledCampaignResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation pipeline; skipped in -short")
	}
	ev := testEval()

	// Reference: no checkpoint at all.
	ref, refBuf := newTestApp(ev, 4)
	if err := ref.runSections(context.Background(), sectionNames()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ck.json")
	load := func() *sim.Runner {
		ck, err := sim.LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRunner()
		r.Checkpoint = ck
		return r
	}

	// Phase 1: kill the campaign partway through.
	killed, _ := newTestApp(ev, 4)
	killed.runner = load()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	err := killed.runSections(ctx, sectionNames())
	cancel()
	if err == nil {
		t.Skip("campaign finished before the kill fired; machine too fast for this cut-off")
	}

	// Phase 2: resume in a "new process" and finish.
	resumed, resumedBuf := newTestApp(ev, 4)
	resumed.runner = load()
	resumed.resume = true
	if err := resumed.runSections(context.Background(), sectionNames()); err != nil {
		t.Fatal(err)
	}
	if refBuf.String() != resumedBuf.String() {
		t.Fatalf("resumed output differs from a from-scratch run:\n%s",
			firstDiff(refBuf.String(), resumedBuf.String()))
	}

	// Phase 3: a second -resume replays every section from the cache.
	replay, replayBuf := newTestApp(ev, 4)
	replay.runner = load()
	replay.resume = true
	start := time.Now()
	if err := replay.runSections(context.Background(), sectionNames()); err != nil {
		t.Fatal(err)
	}
	if refBuf.String() != replayBuf.String() {
		t.Fatal("replayed output differs from the original")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("replay recomputed instead of replaying (%s)", d)
	}
}

// TestSingleSectionHasNoTrailingBlank pins the CLI formatting contract:
// one section renders without the blank separator `all` appends.
func TestSingleSectionHasNoTrailingBlank(t *testing.T) {
	a, buf := newTestApp(testEval(), 2)
	if err := a.runSections(context.Background(), []string{"table2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Table II") {
		t.Fatalf("unexpected table2 output:\n%s", out)
	}
	if strings.HasSuffix(out, "\n\n") {
		t.Fatal("single section emitted a trailing blank line")
	}
}

// firstDiff returns a few lines around the first divergence, keeping
// failure output readable.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(al) {
				hi = len(al)
			}
			return strings.Join(al[lo:hi], "\n")
		}
	}
	if len(al) != len(bl) {
		return "outputs differ in length"
	}
	return "outputs identical"
}

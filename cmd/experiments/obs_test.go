package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tivapromi/internal/obs"
)

// TestObsNeverPerturbsResults is the observability determinism property:
// the same campaign run (a) with everything off, (b) with metrics +
// tracer + event sink all on must render byte-identical stdout. Obs is
// strictly a write-only tap — if instrumentation ever feeds back into a
// simulation decision, a command buffer, or render order, this fails.
func TestObsNeverPerturbsResults(t *testing.T) {
	ev := testEval()
	names := []string{"table2", "flooding", "aggressors"}

	run := func(obsOn bool) string {
		prevMetrics := obs.MetricsEnabled()
		defer obs.SetMetricsEnabled(prevMetrics)
		defer obs.SetTracer(nil)
		defer obs.SetEventSink(nil)
		obs.SetMetricsEnabled(obsOn)
		if obsOn {
			obs.SetTracer(obs.NewTracer())
			var events bytes.Buffer
			obs.SetEventSink(&events)
		} else {
			obs.SetTracer(nil)
			obs.SetEventSink(nil)
		}
		a, buf := newTestApp(ev, 4)
		if err := a.runSections(context.Background(), names); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	off := run(false)
	on := run(true)
	if off != on {
		t.Fatalf("obs perturbed the rendered output:\n--- obs off ---\n%s\n--- obs on ---\n%s",
			firstDiff(off, on), firstDiff(on, off))
	}
	if !strings.Contains(off, "Table II") {
		t.Fatalf("sanity: expected table2 in output, got:\n%.200s", off)
	}
}

// TestObsArtifactsWritten runs a small campaign with the tracer armed
// and checks both artifacts: the metrics dump is Prometheus text
// containing the expected families, and the trace is valid Chrome
// trace-event JSON with at least the campaign-cell and run-attempt
// spans.
func TestObsArtifactsWritten(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	tracePath := filepath.Join(dir, "trace.json")

	prev := obs.CurrentTracer()
	obs.SetTracer(obs.NewTracer())
	defer obs.SetTracer(prev)

	// flooding actually simulates (table2 is analytic and would record no
	// spans), so the trace carries cell and run-attempt spans.
	a, _ := newTestApp(testEval(), 2)
	if err := a.runSections(context.Background(), []string{"flooding"}); err != nil {
		t.Fatal(err)
	}
	if err := writeObsArtifacts(metricsPath, tracePath); err != nil {
		t.Fatal(err)
	}

	prom, err := readFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"# TYPE tivapromi_accesses_total counter",
		"# TYPE tivapromi_cells_completed_total counter",
		"# TYPE tivapromi_run_attempts_total counter",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("metrics dump missing %q", family)
		}
	}

	raw, err := readFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	want := map[string]bool{"cell": false, "run-attempt": false}
	for _, ev := range doc.TraceEvents {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace has no %q span", name)
		}
	}
}

func readFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	return string(raw), err
}

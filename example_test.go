package tivapromi_test

import (
	"fmt"
	"log"

	"tivapromi"
)

// Build a mitigation by name and inspect its per-bank storage at the
// paper's full DDR4 scale — the 120 B history table of Table III.
func ExampleNewMitigation() {
	m, err := tivapromi.NewMitigation("LoLiPRoMi", tivapromi.Target{
		Banks:         16,
		RowsPerBank:   131072,
		RefInt:        8192,
		FlipThreshold: 139000,
	}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s uses %d B per bank\n", m.Name(), m.TableBytesPerBank())
	// Output: LoLiPRoMi uses 120 B per bank
}

// Run the standard attack campaign with and without protection.
func ExampleRunSimulation() {
	cfg := tivapromi.DefaultSimConfig()
	cfg.Windows = 1
	cfg.MinAggressors, cfg.MaxAggressors = 2, 2 // focused double-sided attack

	unprotected, err := tivapromi.RunSimulation(cfg, "")
	if err != nil {
		log.Fatal(err)
	}
	protected, err := tivapromi.RunSimulation(cfg, "CaPRoMi")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected flips: %v\n", unprotected.Flips > 0)
	fmt.Printf("protected flips:   %v\n", protected.Flips > 0)
	// Output:
	// unprotected flips: true
	// protected flips:   false
}

// Drive the device and controller directly for white-box experiments.
func ExampleNewController() {
	dev, err := tivapromi.NewDevice(tivapromi.ScaledParams(), nil)
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := tivapromi.NewController(dev, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctl.AccessRow(0, 4096, false) // row miss: activation
	ctl.AccessRow(0, 4096, false) // row hit: no activation
	fmt.Printf("activations: %d, disturbance on 4097: %d\n",
		dev.Stats().Activates, dev.Disturbance(0, 4097))
	// Output: activations: 1, disturbance on 4097: 1
}
